#include "broadcast/serialization.h"

#include <bit>

#include "common/byte_io.h"

namespace airindex::broadcast {
namespace {

/// First-arc gap is signed (a neighbour id may be below the node id);
/// later gaps are non-negative by the CSR sorted-span invariant.
uint64_t FirstGap(graph::NodeId id, graph::NodeId to) {
  return ZigZag(static_cast<int64_t>(to) - static_cast<int64_t>(id));
}

}  // namespace

size_t NodeRecordBytes(const graph::Graph& g, graph::NodeId v,
                       CycleEncoding encoding) {
  if (encoding == CycleEncoding::kLegacy) {
    return 4 + 8 + 8 + 2 + 8 * g.OutDegree(v);
  }
  const auto arcs = g.OutArcs(v);
  size_t bytes = VarintBytes(v) + 8 + 8 + VarintBytes(arcs.size());
  graph::NodeId prev = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    bytes += VarintBytes(i == 0 ? FirstGap(v, arcs[i].to)
                                : arcs[i].to - prev);
    bytes += VarintBytes(arcs[i].weight);
    prev = arcs[i].to;
  }
  return bytes;
}

void EncodeNodeRecord(const graph::Graph& g, graph::NodeId v,
                      std::vector<uint8_t>* out, CycleEncoding encoding) {
  if (encoding == CycleEncoding::kLegacy) {
    PutU32(out, v);
    PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).x));
    PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).y));
    PutU16(out, static_cast<uint16_t>(g.OutDegree(v)));
    for (const auto& arc : g.OutArcs(v)) {
      PutU32(out, arc.to);
      PutU32(out, arc.weight);
    }
    return;
  }
  const auto arcs = g.OutArcs(v);
  PutVarint(out, v);
  PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).x));
  PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).y));
  PutVarint(out, arcs.size());
  graph::NodeId prev = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    PutVarint(out, i == 0 ? FirstGap(v, arcs[i].to) : arcs[i].to - prev);
    PutVarint(out, arcs[i].weight);
    prev = arcs[i].to;
  }
}

std::vector<uint8_t> EncodeNodeRecords(const graph::Graph& g,
                                       const std::vector<graph::NodeId>& nodes,
                                       CycleEncoding encoding) {
  std::vector<uint8_t> out;
  size_t bytes = encoding == CycleEncoding::kCompact ? 1 : 0;
  for (graph::NodeId v : nodes) bytes += NodeRecordBytes(g, v, encoding);
  out.reserve(bytes);
  if (encoding == CycleEncoding::kCompact) out.push_back(kCompactBlobVersion);
  for (graph::NodeId v : nodes) EncodeNodeRecord(g, v, &out, encoding);
  return out;
}

Status ValidateNodeRecords(const uint8_t* data, size_t size,
                           CycleEncoding encoding) {
  if (encoding == CycleEncoding::kLegacy) {
    ByteReader reader(data, size);
    while (reader.remaining() > 0) {
      if (reader.remaining() < 22) {
        return Status::DataLoss("truncated node record header");
      }
      reader.Skip(20);  // id + coordinates
      const uint16_t deg = reader.ReadU16();
      if (reader.remaining() < static_cast<size_t>(deg) * 8) {
        return Status::DataLoss("truncated adjacency list");
      }
      reader.Skip(static_cast<size_t>(deg) * 8);
    }
    return Status::OK();
  }

  // Compact validation walks the same varint structure the cursor decodes.
  if (size < 1) return Status::DataLoss("missing compact blob version");
  if (data[0] != kCompactBlobVersion) {
    return Status::DataLoss("unknown compact blob version");
  }
  // Mirrors NextCompact's checks exactly (including value ranges), so a
  // validated blob never fails mid-stream — the all-or-nothing contract.
  ByteReader reader(data + 1, size - 1);
  while (reader.remaining() > 0) {
    uint64_t id = 0;
    if (!reader.ReadVarint(&id) || id > graph::kInvalidNode) {
      return Status::DataLoss("bad compact node id");
    }
    if (reader.remaining() < 16) {
      return Status::DataLoss("truncated node record header");
    }
    reader.Skip(16);  // coordinates
    uint64_t deg = 0;
    if (!reader.ReadVarint(&deg) || deg > 0xFFFF) {
      return Status::DataLoss("bad compact degree");
    }
    uint64_t prev = 0;
    for (uint64_t i = 0; i < deg; ++i) {
      uint64_t gap = 0, weight = 0;
      if (!reader.ReadVarint(&gap) || !reader.ReadVarint(&weight) ||
          weight > 0xFFFFFFFFULL) {
        return Status::DataLoss("truncated adjacency list");
      }
      const uint64_t to =
          i == 0 ? static_cast<uint64_t>(static_cast<int64_t>(id) +
                                         UnZigZag(gap))
                 : prev + gap;
      if (to > 0xFFFFFFFFULL) {
        return Status::DataLoss("compact neighbour id out of range");
      }
      prev = to;
    }
  }
  return Status::OK();
}

bool NodeRecordCursor::NextLegacy(NodeRecord* rec) {
  ByteReader reader(data_ + pos_, size_ - pos_);
  if (reader.remaining() < 22) {
    status_ = Status::DataLoss("truncated node record header");
    return false;
  }
  rec->id = reader.ReadU32();
  rec->coord.x = std::bit_cast<double>(reader.ReadU64());
  rec->coord.y = std::bit_cast<double>(reader.ReadU64());
  const uint16_t deg = reader.ReadU16();
  if (reader.remaining() < static_cast<size_t>(deg) * 8) {
    status_ = Status::DataLoss("truncated adjacency list");
    return false;
  }
  rec->arcs.clear();
  rec->arcs.reserve(deg);
  for (uint16_t i = 0; i < deg; ++i) {
    graph::Graph::Arc arc;
    arc.to = reader.ReadU32();
    arc.weight = reader.ReadU32();
    rec->arcs.push_back(arc);
  }
  pos_ += reader.position();
  return true;
}

bool NodeRecordCursor::NextCompact(NodeRecord* rec) {
  ByteReader reader(data_ + pos_, size_ - pos_);
  uint64_t id = 0;
  if (!reader.ReadVarint(&id) || id > graph::kInvalidNode) {
    status_ = Status::DataLoss("bad compact node id");
    return false;
  }
  if (reader.remaining() < 16) {
    status_ = Status::DataLoss("truncated node record header");
    return false;
  }
  rec->id = static_cast<graph::NodeId>(id);
  rec->coord.x = std::bit_cast<double>(reader.ReadU64());
  rec->coord.y = std::bit_cast<double>(reader.ReadU64());
  uint64_t deg = 0;
  if (!reader.ReadVarint(&deg) || deg > 0xFFFF) {
    status_ = Status::DataLoss("bad compact degree");
    return false;
  }
  rec->arcs.clear();
  rec->arcs.reserve(deg);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < deg; ++i) {
    uint64_t gap = 0, weight = 0;
    if (!reader.ReadVarint(&gap) || !reader.ReadVarint(&weight) ||
        weight > 0xFFFFFFFFULL) {
      status_ = Status::DataLoss("truncated adjacency list");
      return false;
    }
    const uint64_t to =
        i == 0 ? static_cast<uint64_t>(static_cast<int64_t>(id) +
                                       UnZigZag(gap))
               : prev + gap;
    if (to > 0xFFFFFFFFULL) {
      status_ = Status::DataLoss("compact neighbour id out of range");
      return false;
    }
    graph::Graph::Arc arc;
    arc.to = static_cast<graph::NodeId>(to);
    arc.weight = static_cast<graph::Weight>(weight);
    rec->arcs.push_back(arc);
    prev = to;
  }
  pos_ += reader.position();
  return true;
}

bool NodeRecordCursor::Next(NodeRecord* rec) {
  if (!status_.ok()) return false;
  if (encoding_ == CycleEncoding::kCompact && pos_ == 0) {
    if (size_ < 1 || data_[0] != kCompactBlobVersion) {
      status_ = Status::DataLoss("unknown compact blob version");
      return false;
    }
    pos_ = 1;
  }
  if (pos_ >= size_) return false;
  return encoding_ == CycleEncoding::kLegacy ? NextLegacy(rec)
                                             : NextCompact(rec);
}

Result<std::vector<NodeRecord>> DecodeNodeRecords(
    const std::vector<uint8_t>& buf, CycleEncoding encoding) {
  std::vector<NodeRecord> records;
  NodeRecordCursor cursor(buf, encoding);
  NodeRecord rec;
  while (cursor.Next(&rec)) records.push_back(rec);
  if (!cursor.status().ok()) return cursor.status();
  return records;
}

size_t NetworkDataBytes(const graph::Graph& g, CycleEncoding encoding) {
  size_t bytes = encoding == CycleEncoding::kCompact ? 1 : 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bytes += NodeRecordBytes(g, v, encoding);
  }
  return bytes;
}

}  // namespace airindex::broadcast
