#ifndef AIRINDEX_BROADCAST_SERIALIZATION_H_
#define AIRINDEX_BROADCAST_SERIALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::broadcast {

/// Wire format of the network data (adjacency lists; §2.1's <id, x, y> node
/// plus <id_i, id_j, w_ij> edges, grouped per node).
///
/// Two encodings exist, selected out-of-band (each air index knows which
/// encoding its cycle was built with; payloads do not self-describe beyond
/// the compact blob's version byte):
///
/// kLegacy — all integers little-endian fixed-width; coordinates are raw
/// IEEE-754 doubles so the client-side kd-tree mapping agrees bit-for-bit
/// with the server's. This is the format every reproduction number was
/// measured with, and it stays the default:
///
///   NodeRecord := id:u32  x:f64  y:f64  deg:u16  { to:u32 weight:u32 }^deg
///
/// kCompact — varint + delta coding for continental-scale cycles. A record
/// sequence is prefixed with a single version byte (kCompactBlobVersion) as
/// a cheap self-check against decoding with the wrong setting; coordinates
/// stay raw doubles (bit-exactness is load-bearing); adjacency exploits the
/// CSR invariant that each span is sorted by target id, encoding gaps:
///
///   CompactBlob   := version:u8  CompactRecord*
///   CompactRecord := id:varint  x:f64  y:f64  deg:varint
///                    { gap:varint  weight:varint }^deg
///   gap_0 = zigzag(to_0 - id); gap_k = to_k - to_{k-1}  (k > 0)
///
/// On road networks neighbour ids cluster near the node id, so gaps and
/// jittered weights fit 1-3 varint bytes instead of 4 fixed — 25-40%
/// smaller cycles (see docs/perf.md).
///
/// Records are concatenated; a record may span packet boundaries (standard
/// air-index practice; the paper's 128-byte packets are smaller than many
/// adjacency lists anyway).
struct NodeRecord {
  graph::NodeId id = graph::kInvalidNode;
  graph::Point coord;
  std::vector<graph::Graph::Arc> arcs;
};

/// Which wire format a broadcast cycle's payloads use.
enum class CycleEncoding : uint8_t {
  kLegacy = 0,
  kCompact = 1,
};

/// First byte of every compact record blob.
inline constexpr uint8_t kCompactBlobVersion = 0xC1;

/// Serialized size of `v`'s record (excluding, for kCompact, the one
/// version byte the enclosing blob carries).
size_t NodeRecordBytes(const graph::Graph& g, graph::NodeId v,
                       CycleEncoding encoding = CycleEncoding::kLegacy);

/// Appends `v`'s record to `out` (record only — the blob version byte is
/// EncodeNodeRecords' job).
void EncodeNodeRecord(const graph::Graph& g, graph::NodeId v,
                      std::vector<uint8_t>* out,
                      CycleEncoding encoding = CycleEncoding::kLegacy);

/// Encodes the records of `nodes` in order; a kCompact blob is prefixed
/// with kCompactBlobVersion.
std::vector<uint8_t> EncodeNodeRecords(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes,
    CycleEncoding encoding = CycleEncoding::kLegacy);

/// Checks that `[data, data + size)` is a well-formed record sequence
/// without materializing anything (the exact checks DecodeNodeRecords
/// applies). Clients validate a segment first and then stream it with a
/// NodeRecordCursor, preserving the historical all-or-nothing ingest on
/// damaged payloads while allocating nothing per record.
Status ValidateNodeRecords(const uint8_t* data, size_t size,
                           CycleEncoding encoding = CycleEncoding::kLegacy);
inline Status ValidateNodeRecords(
    const std::vector<uint8_t>& buf,
    CycleEncoding encoding = CycleEncoding::kLegacy) {
  return ValidateNodeRecords(buf.data(), buf.size(), encoding);
}

/// Streaming decoder: yields one record at a time into a caller-provided
/// NodeRecord whose arc storage is reused across calls (and across cursors
/// when the caller also reuses the record). Usage:
///
///   NodeRecordCursor cur(seg.payload, encoding);
///   while (cur.Next(&rec)) Ingest(rec);
///   // cur.status() tells a clean end from a truncated payload.
class NodeRecordCursor {
 public:
  NodeRecordCursor(const uint8_t* data, size_t size,
                   CycleEncoding encoding = CycleEncoding::kLegacy)
      : data_(data), size_(size), encoding_(encoding) {}
  explicit NodeRecordCursor(const std::vector<uint8_t>& buf,
                            CycleEncoding encoding = CycleEncoding::kLegacy)
      : NodeRecordCursor(buf.data(), buf.size(), encoding) {}

  /// Decodes the next record into `*rec` (rec->arcs is clear()ed, keeping
  /// its capacity). Returns false at end of input or on malformed input;
  /// distinguish via status(). For kCompact the blob version byte is
  /// checked and consumed on the first call.
  bool Next(NodeRecord* rec);

  const Status& status() const { return status_; }

 private:
  bool NextLegacy(NodeRecord* rec);
  bool NextCompact(NodeRecord* rec);

  const uint8_t* data_;
  size_t size_;
  CycleEncoding encoding_;
  size_t pos_ = 0;
  Status status_ = Status::OK();
};

/// Decodes every record in `buf`. Fails on truncation.
Result<std::vector<NodeRecord>> DecodeNodeRecords(
    const std::vector<uint8_t>& buf,
    CycleEncoding encoding = CycleEncoding::kLegacy);

/// Serialized bytes of the whole network data (all records; for kCompact
/// plus the version byte of a single enclosing blob — callers that chunk
/// records into several blobs pay one extra byte per chunk).
size_t NetworkDataBytes(const graph::Graph& g,
                        CycleEncoding encoding = CycleEncoding::kLegacy);

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_SERIALIZATION_H_
