#ifndef AIRINDEX_BROADCAST_SERIALIZATION_H_
#define AIRINDEX_BROADCAST_SERIALIZATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::broadcast {

/// Wire format of the network data (adjacency lists; §2.1's <id, x, y> node
/// plus <id_i, id_j, w_ij> edges, grouped per node). All integers are
/// little-endian fixed-width; coordinates are raw IEEE-754 doubles so the
/// client-side kd-tree mapping agrees bit-for-bit with the server's.
///
///   NodeRecord := id:u32  x:f64  y:f64  deg:u16  { to:u32 weight:u32 }^deg
///
/// Records are concatenated; a record may span packet boundaries (standard
/// air-index practice; the paper's 128-byte packets are smaller than many
/// adjacency lists anyway).
struct NodeRecord {
  graph::NodeId id = graph::kInvalidNode;
  graph::Point coord;
  std::vector<graph::Graph::Arc> arcs;
};

/// Serialized size of `v`'s record.
size_t NodeRecordBytes(const graph::Graph& g, graph::NodeId v);

/// Appends `v`'s record to `out`.
void EncodeNodeRecord(const graph::Graph& g, graph::NodeId v,
                      std::vector<uint8_t>* out);

/// Encodes the records of `nodes` in order.
std::vector<uint8_t> EncodeNodeRecords(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes);

/// Decodes every record in `buf`. Fails on truncation.
Result<std::vector<NodeRecord>> DecodeNodeRecords(
    const std::vector<uint8_t>& buf);

/// Serialized bytes of the whole network data (all records).
size_t NetworkDataBytes(const graph::Graph& g);

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_SERIALIZATION_H_
