#ifndef AIRINDEX_BROADCAST_SERIALIZATION_H_
#define AIRINDEX_BROADCAST_SERIALIZATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::broadcast {

/// Wire format of the network data (adjacency lists; §2.1's <id, x, y> node
/// plus <id_i, id_j, w_ij> edges, grouped per node). All integers are
/// little-endian fixed-width; coordinates are raw IEEE-754 doubles so the
/// client-side kd-tree mapping agrees bit-for-bit with the server's.
///
///   NodeRecord := id:u32  x:f64  y:f64  deg:u16  { to:u32 weight:u32 }^deg
///
/// Records are concatenated; a record may span packet boundaries (standard
/// air-index practice; the paper's 128-byte packets are smaller than many
/// adjacency lists anyway).
struct NodeRecord {
  graph::NodeId id = graph::kInvalidNode;
  graph::Point coord;
  std::vector<graph::Graph::Arc> arcs;
};

/// Serialized size of `v`'s record.
size_t NodeRecordBytes(const graph::Graph& g, graph::NodeId v);

/// Appends `v`'s record to `out`.
void EncodeNodeRecord(const graph::Graph& g, graph::NodeId v,
                      std::vector<uint8_t>* out);

/// Encodes the records of `nodes` in order.
std::vector<uint8_t> EncodeNodeRecords(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes);

/// Checks that `[data, data + size)` is a well-formed record sequence
/// without materializing anything (the exact checks DecodeNodeRecords
/// applies). Clients validate a segment first and then stream it with a
/// NodeRecordCursor, preserving the historical all-or-nothing ingest on
/// damaged payloads while allocating nothing per record.
Status ValidateNodeRecords(const uint8_t* data, size_t size);
inline Status ValidateNodeRecords(const std::vector<uint8_t>& buf) {
  return ValidateNodeRecords(buf.data(), buf.size());
}

/// Streaming decoder: yields one record at a time into a caller-provided
/// NodeRecord whose arc storage is reused across calls (and across cursors
/// when the caller also reuses the record). Usage:
///
///   NodeRecordCursor cur(seg.payload);
///   while (cur.Next(&rec)) Ingest(rec);
///   // cur.status() tells a clean end from a truncated payload.
class NodeRecordCursor {
 public:
  NodeRecordCursor(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit NodeRecordCursor(const std::vector<uint8_t>& buf)
      : NodeRecordCursor(buf.data(), buf.size()) {}

  /// Decodes the next record into `*rec` (rec->arcs is clear()ed, keeping
  /// its capacity). Returns false at end of input or on malformed input;
  /// distinguish via status().
  bool Next(NodeRecord* rec);

  const Status& status() const { return status_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_ = Status::OK();
};

/// Decodes every record in `buf`. Fails on truncation.
Result<std::vector<NodeRecord>> DecodeNodeRecords(
    const std::vector<uint8_t>& buf);

/// Serialized bytes of the whole network data (all records).
size_t NetworkDataBytes(const graph::Graph& g);

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_SERIALIZATION_H_
