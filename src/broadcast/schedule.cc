#include "broadcast/schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace airindex::broadcast {

std::vector<uint32_t> CycleGroups(const BroadcastCycle& cycle) {
  // Every segment is its own schedulable unit. Chunks are built from
  // whole groups, so segment granularity is the finest partition that
  // still keeps segment reassembly away from repetition seams — and fine
  // groups are what let the compiler interleave disks tightly (small
  // chunks) and the planner spin index copies independently of the data
  // runs whose popularity they serve.
  std::vector<uint32_t> group_of(cycle.num_segments());
  std::iota(group_of.begin(), group_of.end(), 0u);
  return group_of;
}

uint32_t NumGroups(const std::vector<uint32_t>& group_of_segment) {
  return group_of_segment.empty() ? 0 : group_of_segment.back() + 1;
}

std::vector<uint32_t> GroupPacketCounts(
    const BroadcastCycle& cycle,
    const std::vector<uint32_t>& group_of_segment) {
  std::vector<uint32_t> packets(NumGroups(group_of_segment), 0);
  for (size_t i = 0; i < group_of_segment.size(); ++i) {
    packets[group_of_segment[i]] += cycle.segment(i).PacketCount();
  }
  return packets;
}

Result<BroadcastSchedule> BroadcastSchedule::Compile(
    const BroadcastCycle* cycle, ScheduleSpec spec) {
  if (cycle == nullptr || cycle->total_packets() == 0) {
    return Status::InvalidArgument("schedule needs a non-empty cycle");
  }
  BroadcastSchedule s;
  s.cycle_ = cycle;
  s.group_of_segment_ = CycleGroups(*cycle);
  s.num_groups_ = NumGroups(s.group_of_segment_);
  if (spec.flat()) {
    // Identity timeline: one disk spinning once.
    spec.spin = {1};
    spec.disk_of_group.assign(s.num_groups_, 0);
  }
  if (spec.disk_of_group.size() != s.num_groups_) {
    return Status::InvalidArgument(
        "schedule spec covers " + std::to_string(spec.disk_of_group.size()) +
        " groups, cycle has " + std::to_string(s.num_groups_));
  }
  const auto num_disks = static_cast<uint32_t>(spec.spin.size());
  uint64_t lcm = 1;
  for (uint32_t r : spec.spin) {
    if (r == 0) return Status::InvalidArgument("disk spin rate must be >= 1");
    lcm = std::lcm(lcm, static_cast<uint64_t>(r));
    if (lcm > kMaxMacroMinorCycles) {
      return Status::InvalidArgument(
          "spin rates produce a macro cycle beyond " +
          std::to_string(kMaxMacroMinorCycles) + " minor cycles");
    }
  }
  for (uint32_t d : spec.disk_of_group) {
    if (d >= num_disks) {
      return Status::InvalidArgument("group assigned to unknown disk " +
                                     std::to_string(d));
    }
  }
  s.spec_ = std::move(spec);

  // Each group is one contiguous flat packet range [start, end).
  struct GroupRange {
    uint32_t start = 0;
    uint32_t end = 0;
  };
  std::vector<GroupRange> range(s.num_groups_);
  for (size_t i = 0; i < s.group_of_segment_.size(); ++i) {
    const uint32_t g = s.group_of_segment_[i];
    const uint32_t start = cycle->SegmentStart(i);
    const uint32_t end = start + cycle->segment(i).PacketCount();
    if (range[g].end == 0 && range[g].start == 0) range[g].start = start;
    range[g].end = end;
  }

  uint64_t macro_packets = 0;
  for (uint32_t g = 0; g < s.num_groups_; ++g) {
    macro_packets += static_cast<uint64_t>(range[g].end - range[g].start) *
                     s.spec_.spin[s.spec_.disk_of_group[g]];
  }
  s.minor_cycles_ = lcm;

  // Ideal-position schedule: every (group, repetition) occurrence gets an
  // ideal macro slot, expressed as an exact rational num/den; occurrences
  // are emitted whole, sorted by ideal. Because the ideals are slot-space
  // coordinates (measure-preserving: the material emitted between two
  // ideals matches their slot distance), emissions track their ideals to
  // within one group length — hot-data insertions can't pile up and drift
  // a repetition away from its slot.
  //
  // Ideals come in two flavors:
  //   * Data group g: (S(g) + k * macro) / spin, where S(g) is the
  //     group's start in the *stretched* flat order (prefix sum of
  //     len * spin). Spin-1 data keeps its flat-cycle order; hot groups
  //     repeat at even intervals.
  //   * Index group c (c-th index segment in flat order, of R): its k-th
  //     repetition at (c * macro / R + k * macro) / spin. Index starts are
  //     what terminate every client's initial wait, so the R copies are
  //     re-phased evenly across the macro cycle rather than inheriting
  //     the flat layout's (stretch-distorted) spacing: with equal spins
  //     the union of all index occurrences lands on one even lattice of
  //     R * spin slots — the wait-optimal placement the square-root rule
  //     assumes.
  struct Occurrence {
    uint64_t num = 0;  // ideal macro slot = num / den
    uint64_t den = 1;
    uint32_t group = 0;
  };
  uint64_t num_occurrences = 0;
  uint32_t num_index_groups = 0;
  for (uint32_t g = 0; g < s.num_groups_; ++g) {
    num_occurrences += s.spec_.spin[s.spec_.disk_of_group[g]];
    const uint32_t si = cycle->SegmentAt(range[g].start);
    if (cycle->segment(si).is_index) ++num_index_groups;
  }
  std::vector<Occurrence> occs;
  occs.reserve(num_occurrences);
  uint64_t stretched_start = 0;  // S(g): groups are in flat cycle order
  uint32_t index_rank = 0;       // c: rank among index groups
  for (uint32_t g = 0; g < s.num_groups_; ++g) {
    const uint32_t spin = s.spec_.spin[s.spec_.disk_of_group[g]];
    const uint32_t si = cycle->SegmentAt(range[g].start);
    const bool is_index = cycle->segment(si).is_index;
    for (uint32_t k = 0; k < spin; ++k) {
      Occurrence o;
      if (is_index) {
        // (c / R + k) * macro / spin, over the common denominator R * spin.
        o.num = macro_packets *
                (index_rank + static_cast<uint64_t>(k) * num_index_groups);
        o.den = static_cast<uint64_t>(num_index_groups) * spin;
      } else {
        o.num = stretched_start + k * macro_packets;
        o.den = spin;
      }
      o.group = g;
      occs.push_back(o);
    }
    if (is_index) ++index_rank;
    stretched_start +=
        static_cast<uint64_t>(range[g].end - range[g].start) * spin;
  }
  std::stable_sort(occs.begin(), occs.end(),
                   [](const Occurrence& a, const Occurrence& b) {
                     // a.num / a.den < b.num / b.den, exactly, without
                     // division.
                     return a.num * b.den < b.num * a.den;
                   });
  s.timeline_.reserve(macro_packets);
  for (const Occurrence& o : occs) {
    for (uint32_t p = range[o.group].start; p < range[o.group].end; ++p) {
      s.timeline_.push_back(p);
    }
  }

  // Occurrence index (counting sort of slots by flat position) and the
  // index-start slot list.
  const uint64_t total = cycle->total_packets();
  s.occ_start_.assign(total + 1, 0);
  for (uint32_t p : s.timeline_) ++s.occ_start_[p + 1];
  for (uint32_t p = 0; p < total; ++p) s.occ_start_[p + 1] += s.occ_start_[p];
  s.occ_.resize(s.timeline_.size());
  {
    std::vector<uint32_t> cursor(s.occ_start_.begin(), s.occ_start_.end() - 1);
    for (uint32_t slot = 0; slot < s.timeline_.size(); ++slot) {
      s.occ_[cursor[s.timeline_[slot]]++] = slot;
    }
  }
  for (uint32_t slot = 0; slot < s.timeline_.size(); ++slot) {
    const uint32_t cpos = s.timeline_[slot];
    const uint32_t si = cycle->SegmentAt(cpos);
    if (cycle->segment(si).is_index && cycle->SegmentStart(si) == cpos) {
      s.index_slots_.push_back(slot);
    }
  }
  return s;
}

uint64_t BroadcastSchedule::NextSlotOf(uint64_t abs, uint32_t cpos) const {
  const uint64_t macro = timeline_.size();
  const auto m = static_cast<uint32_t>(abs % macro);
  const uint64_t base = abs - m;
  const auto begin = occ_.begin() + occ_start_[cpos];
  const auto end = occ_.begin() + occ_start_[cpos + 1];
  const auto it = std::lower_bound(begin, end, m);
  if (it != end) return base + *it;
  // Wrap into the next macro cycle (every position occurs at least once,
  // so `begin` is valid).
  return base + macro + *begin;
}

uint32_t BroadcastSchedule::NextIndexCyclePos(uint64_t abs) const {
  const auto m = static_cast<uint32_t>(abs % timeline_.size());
  if (index_slots_.empty()) return cycle_->NextIndexStart(timeline_[m]);
  const auto it =
      std::lower_bound(index_slots_.begin(), index_slots_.end(), m);
  const uint32_t slot = it != index_slots_.end() ? *it : index_slots_.front();
  return timeline_[slot];
}

std::vector<BroadcastSchedule::DiskInfo> BroadcastSchedule::DiskLayout()
    const {
  std::vector<DiskInfo> disks(spec_.spin.size());
  for (size_t d = 0; d < disks.size(); ++d) disks[d].spin = spec_.spin[d];
  const std::vector<uint32_t> packets =
      GroupPacketCounts(*cycle_, group_of_segment_);
  for (uint32_t g = 0; g < num_groups_; ++g) {
    DiskInfo& d = disks[spec_.disk_of_group[g]];
    ++d.groups;
    d.packets += packets[g];
  }
  return disks;
}

namespace {

/// Exact wait statistics from the sorted index-start slots of a timeline
/// of `total` slots. A client arriving at slot a (uniform) probes packet
/// a, then dozes to the first index start >= a + 1: within a gap of G
/// slots between consecutive index starts the waits are 1..G, each hit by
/// exactly one arrival slot.
WaitProfile ProfileOfIndexSlots(const std::vector<uint64_t>& index_slots,
                                uint64_t total) {
  WaitProfile p;
  if (index_slots.empty() || total == 0) return p;
  std::vector<uint64_t> gaps;
  gaps.reserve(index_slots.size());
  for (size_t i = 0; i < index_slots.size(); ++i) {
    const uint64_t next = i + 1 < index_slots.size()
                              ? index_slots[i + 1]
                              : index_slots[0] + total;
    gaps.push_back(next - index_slots[i]);
  }
  double mean_num = 0.0;
  uint64_t max_gap = 0;
  for (uint64_t g : gaps) {
    mean_num += 0.5 * static_cast<double>(g) * static_cast<double>(g + 1);
    max_gap = std::max(max_gap, g);
  }
  p.mean = mean_num / static_cast<double>(total);
  // p95: smallest integer wait t with at most 5% of arrivals waiting
  // longer — sum over gaps of max(0, G - t) slots wait > t.
  const double tail_budget = 0.05 * static_cast<double>(total);
  uint64_t lo = 0;
  uint64_t hi = max_gap;
  while (lo < hi) {
    const uint64_t t = lo + (hi - lo) / 2;
    uint64_t tail = 0;
    for (uint64_t g : gaps) tail += g > t ? g - t : 0;
    if (static_cast<double>(tail) <= tail_budget) {
      hi = t;
    } else {
      lo = t + 1;
    }
  }
  p.p95 = static_cast<double>(lo);
  return p;
}

}  // namespace

WaitProfile FlatWaitProfile(const BroadcastCycle& cycle) {
  std::vector<uint64_t> starts;
  for (uint32_t si = 0; si < cycle.num_segments(); ++si) {
    if (cycle.segment(si).is_index) {
      starts.push_back(cycle.SegmentStart(si));
    }
  }
  return ProfileOfIndexSlots(starts, cycle.total_packets());
}

WaitProfile ScheduleWaitProfile(const BroadcastSchedule& schedule) {
  const BroadcastCycle& cycle = schedule.cycle();
  std::vector<uint64_t> starts;
  for (uint64_t slot = 0; slot < schedule.macro_packets(); ++slot) {
    const uint32_t cpos = schedule.CyclePosAt(slot);
    const uint32_t si = cycle.SegmentAt(cpos);
    if (cycle.segment(si).is_index && cycle.SegmentStart(si) == cpos) {
      starts.push_back(slot);
    }
  }
  return ProfileOfIndexSlots(starts, schedule.macro_packets());
}

ScheduleSpec SquareRootSpec(const std::vector<double>& group_weight,
                            const std::vector<uint32_t>& group_packets,
                            uint32_t disks,
                            std::vector<uint32_t> rates) {
  ScheduleSpec spec;
  const size_t n = group_weight.size();
  if (n == 0 || group_packets.size() != n) return spec;
  if (disks == 0) disks = 1;
  if (rates.empty()) {
    for (uint32_t d = 0; d < disks; ++d) {
      rates.push_back(1u << (disks - 1 - d));
    }
  } else {
    std::sort(rates.begin(), rates.end(), std::greater<>());
  }
  for (uint32_t& r : rates) {
    if (r == 0) r = 1;
  }

  // sqrt(p / l) per group, with a pinch of smoothing so groups no query
  // happened to hit keep a nonzero frequency.
  double total_weight = 0.0;
  for (double w : group_weight) total_weight += w;
  const double eps =
      total_weight > 0.0 ? 0.01 * total_weight / static_cast<double>(n)
                         : 1.0;
  std::vector<double> score(n);
  for (size_t g = 0; g < n; ++g) {
    const double len = group_packets[g] > 0 ? group_packets[g] : 1.0;
    score[g] = std::sqrt((group_weight[g] + eps) / len);
  }
  // Bandwidth-preserving normalization (Acharya's rule): scale the ideal
  // frequencies so sum(len_g * f_g) equals the flat cycle's packet budget.
  // Groups then want f near 1 unless demand genuinely sets them apart —
  // normalizing to the coldest group instead would spin most of the cycle
  // up and stretch the macro cycle until absolute waits got *worse*.
  double ideal_budget = 0.0;
  double flat_budget = 0.0;
  for (size_t g = 0; g < n; ++g) {
    const double len = group_packets[g] > 0 ? group_packets[g] : 1.0;
    ideal_budget += len * score[g];
    flat_budget += len;
  }
  const double norm = ideal_budget > 0.0 ? flat_budget / ideal_budget : 1.0;

  // Nearest rate in log space: a group wanting 3x the base frequency lands
  // on spin 4 of the {4,2,1} ladder, one wanting 1.3x stays on spin 1.
  spec.spin = rates;
  spec.disk_of_group.resize(n);
  for (size_t g = 0; g < n; ++g) {
    const double want = std::log(std::max(score[g] * norm, 1.0));
    uint32_t best = 0;
    double best_dist = 0.0;
    for (uint32_t d = 0; d < rates.size(); ++d) {
      const double dist = std::abs(want - std::log(double{1} * rates[d]));
      if (d == 0 || dist < best_dist) {
        best = d;
        best_dist = dist;
      }
    }
    spec.disk_of_group[g] = best;
  }

  // A plan that never leaves the slowest disk is the flat broadcast.
  const uint32_t slowest = static_cast<uint32_t>(rates.size()) - 1;
  bool all_slowest = true;
  for (uint32_t d : spec.disk_of_group) {
    if (d != slowest) {
      all_slowest = false;
      break;
    }
  }
  if (all_slowest && rates[slowest] == 1) return ScheduleSpec::Flat();
  return spec;
}

}  // namespace airindex::broadcast
