#ifndef AIRINDEX_ALGO_D_ARY_HEAP_H_
#define AIRINDEX_ALGO_D_ARY_HEAP_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace airindex::algo {

/// Flat-array d-ary min-heap (default 4-ary). Compared to the binary
/// std::priority_queue the wider fan-out roughly halves the tree depth and
/// keeps a parent's children in one or two cache lines, which is where a
/// Dijkstra kernel spends its sift time; `clear()` keeps the backing
/// storage so a reused heap allocates nothing in steady state.
///
/// `Less` must be a strict weak ordering; the minimum element per `Less`
/// is at top(). When `Less` is a strict *total* order over the pushed
/// elements (e.g. lexicographic (dist, node) pairs with distinct entries),
/// the pop sequence is independent of the heap's arity and layout — the
/// property the Dijkstra wrappers rely on to stay bit-identical to the
/// old std::priority_queue implementation.
template <typename T, typename Less = std::less<T>, unsigned Arity = 4>
class DAryHeap {
  static_assert(Arity >= 2, "a heap needs at least binary fan-out");

 public:
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  void reserve(size_t n) { items_.reserve(n); }

  /// Drops every element but keeps the allocation.
  void clear() { items_.clear(); }

  const T& top() const { return items_.front(); }

  void push(T item) {
    items_.push_back(std::move(item));
    SiftUp(items_.size() - 1);
  }

  void pop() {
    if (items_.size() > 1) {
      items_.front() = std::move(items_.back());
      items_.pop_back();
      SiftDown(0);
    } else {
      items_.pop_back();
    }
  }

 private:
  void SiftUp(size_t i) {
    T moving = std::move(items_[i]);
    while (i > 0) {
      const size_t parent = (i - 1) / Arity;
      if (!less_(moving, items_[parent])) break;
      items_[i] = std::move(items_[parent]);
      i = parent;
    }
    items_[i] = std::move(moving);
  }

  void SiftDown(size_t i) {
    const size_t n = items_.size();
    T moving = std::move(items_[i]);
    for (;;) {
      const size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      const size_t last_child =
          first_child + Arity <= n ? first_child + Arity : n;
      size_t best = first_child;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (less_(items_[c], items_[best])) best = c;
      }
      if (!less_(items_[best], moving)) break;
      items_[i] = std::move(items_[best]);
      i = best;
    }
    items_[i] = std::move(moving);
  }

  std::vector<T> items_;
  [[no_unique_address]] Less less_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_D_ARY_HEAP_H_
