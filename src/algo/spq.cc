#include "algo/spq.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "algo/dijkstra.h"
#include "common/thread_pool.h"

namespace airindex::algo {
namespace {

using graph::NodeId;
using graph::Point;

constexpr int kMaxDepth = 60;

/// Recursive coloured-quadtree builder over point indexes. Splits until a
/// cell is empty, single-coloured, or (pathologically, e.g. duplicate
/// coordinates in imported data) kMaxDepth is hit, in which case the first
/// colour wins — documented limitation, unreachable for generated networks.
struct QtBuilder {
  const std::vector<Point>& pts;
  const std::vector<int32_t>& colors;
  std::vector<SpqIndex::QtNode>* out;

  int32_t BuildCell(std::vector<uint32_t>& items, double x, double y,
                    double size, int depth) {
    const auto idx = static_cast<int32_t>(out->size());
    out->emplace_back();
    if (items.empty()) {
      (*out)[idx].color = SpqIndex::QtNode::kNoColor;
      return idx;
    }
    bool uniform = true;
    for (uint32_t i : items) {
      if (colors[i] != colors[items[0]]) {
        uniform = false;
        break;
      }
    }
    if (uniform || depth >= kMaxDepth) {
      (*out)[idx].color = colors[items[0]];
      return idx;
    }

    const double half = size / 2;
    std::vector<uint32_t> quads[4];
    for (uint32_t i : items) {
      const int q = (pts[i].x >= x + half ? 1 : 0) +
                    (pts[i].y >= y + half ? 2 : 0);
      quads[q].push_back(i);
    }
    items.clear();
    items.shrink_to_fit();
    for (int q = 0; q < 4; ++q) {
      const double cx = x + (q & 1 ? half : 0);
      const double cy = y + (q & 2 ? half : 0);
      const int32_t child = BuildCell(quads[q], cx, cy, half, depth + 1);
      (*out)[idx].child[q] = child;
    }
    (*out)[idx].color = SpqIndex::QtNode::kNoColor;
    return idx;
  }
};

/// First-hop arc ordinal at `source` for every node, derived from one full
/// Dijkstra: process nodes by increasing distance and inherit the parent's
/// colour (direct children of source get their arc's ordinal).
std::vector<int32_t> FirstHopColors(const graph::Graph& g, NodeId source) {
  SearchTree tree = DijkstraAll(g, source);
  const size_t n = g.num_nodes();
  std::vector<int32_t> colors(n, SpqIndex::QtNode::kNoColor);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return tree.dist[a] < tree.dist[b];
  });

  auto arcs = g.OutArcs(source);
  for (NodeId v : order) {
    if (v == source || tree.dist[v] == graph::kInfDist) continue;
    const NodeId p = tree.parent[v];
    if (p == source) {
      // Ordinal of arc source->v (adjacency is sorted by head id).
      size_t lo = 0, hi = arcs.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (arcs[mid].to < v) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      colors[v] = static_cast<int32_t>(lo);
    } else {
      colors[v] = colors[p];
    }
  }
  return colors;
}

struct RootCell {
  double min_x, min_y, size;
};

RootCell ComputeRootCell(const graph::Graph& g) {
  double min_x = std::numeric_limits<double>::max(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const auto& p : g.coords()) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  // Slightly padded square so every point is strictly inside.
  const double size = std::max(max_x - min_x, max_y - min_y) * 1.0001 + 1.0;
  return {min_x, min_y, size};
}

SpqIndex::Tree BuildTreeFor(const graph::Graph& g, NodeId source,
                            const RootCell& root) {
  SpqIndex::Tree tree;
  std::vector<int32_t> colors = FirstHopColors(g, source);
  std::vector<uint32_t> items;
  items.reserve(g.num_nodes() - 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != source) items.push_back(v);
  }
  QtBuilder builder{g.coords(), colors, &tree.nodes};
  builder.BuildCell(items, root.min_x, root.min_y, root.size, 0);
  return tree;
}

}  // namespace

Result<SpqIndex> SpqIndex::Build(const graph::Graph& g) {
  if (g.num_nodes() < 2) return Status::InvalidArgument("graph too small");
  SpqIndex idx;
  const RootCell root = ComputeRootCell(g);
  idx.min_x_ = root.min_x;
  idx.min_y_ = root.min_y;
  idx.size_ = root.size;
  idx.trees_.resize(g.num_nodes());
  ParallelFor(g.num_nodes(), [&](size_t v) {
    idx.trees_[v] = BuildTreeFor(g, static_cast<NodeId>(v), root);
  });
  return idx;
}

Result<size_t> SpqIndex::BuildSizeOnly(const graph::Graph& g) {
  if (g.num_nodes() < 2) return Status::InvalidArgument("graph too small");
  const RootCell root = ComputeRootCell(g);
  std::atomic<size_t> total{0};
  ParallelFor(g.num_nodes(), [&](size_t v) {
    Tree tree = BuildTreeFor(g, static_cast<NodeId>(v), root);
    total.fetch_add(TreeBytes(tree), std::memory_order_relaxed);
  });
  return total.load();
}

SpqIndex SpqIndex::FromParts(double min_x, double min_y, double size,
                             std::vector<Tree> trees) {
  SpqIndex idx;
  idx.min_x_ = min_x;
  idx.min_y_ = min_y;
  idx.size_ = size;
  idx.trees_ = std::move(trees);
  return idx;
}

int32_t SpqIndex::ColorOf(graph::NodeId v, graph::Point p) const {
  const Tree& tree = trees_[v];
  double x = min_x_, y = min_y_, size = size_;
  int32_t cur = 0;
  while (!tree.nodes[cur].is_leaf()) {
    const double half = size / 2;
    const int q = (p.x >= x + half ? 1 : 0) + (p.y >= y + half ? 2 : 0);
    x += (q & 1) ? half : 0;
    y += (q & 2) ? half : 0;
    size = half;
    cur = tree.nodes[cur].child[q];
  }
  return tree.nodes[cur].color;
}

graph::Path SpqIndex::Query(const graph::Graph& g, graph::NodeId s,
                            graph::NodeId t) const {
  graph::Path path;
  path.nodes.push_back(s);
  graph::Dist total = 0;
  NodeId cur = s;
  const graph::Point target = g.Coord(t);
  for (size_t step = 0; cur != t; ++step) {
    if (step > g.num_nodes()) return graph::Path{};  // corrupt index
    const int32_t color = ColorOf(cur, target);
    if (color < 0 ||
        static_cast<size_t>(color) >= g.OutDegree(cur)) {
      return graph::Path{};  // unreachable / corrupt
    }
    const auto& arc = g.OutArcs(cur)[color];
    total += arc.weight;
    cur = arc.to;
    path.nodes.push_back(cur);
  }
  path.dist = total;
  return path;
}

size_t SpqIndex::TreeBytes(const Tree& tree) {
  size_t bytes = 0;
  for (const auto& node : tree.nodes) {
    bytes += node.is_leaf() ? 3 : 1;  // tag + u16 colour for leaves
  }
  return bytes;
}

size_t SpqIndex::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& tree : trees_) bytes += TreeBytes(tree);
  return bytes;
}

size_t SpqIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& tree : trees_) {
    bytes += tree.nodes.size() * sizeof(QtNode);
  }
  return bytes;
}

}  // namespace airindex::algo
