#include "algo/dijkstra.h"

#include <algorithm>

namespace airindex::algo {

SearchTree MaterializeSearchTree(const SearchWorkspace& ws, size_t n) {
  SearchTree out;
  out.dist.resize(n);
  out.parent.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    out.dist[v] = ws.DistTo(v);
    out.parent[v] = ws.ParentOf(v);
  }
  out.settled = ws.settled();
  return out;
}

namespace {

template <typename DistOf, typename ParentOf>
Path ExtractPathImpl(DistOf dist_of, ParentOf parent_of, NodeId source,
                     NodeId target) {
  Path p;
  const Dist d = dist_of(target);
  if (d == kInfDist) return p;
  p.dist = d;
  NodeId v = target;
  while (v != kInvalidNode) {
    p.nodes.push_back(v);
    if (v == source) break;
    v = parent_of(v);
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  if (p.nodes.empty() || p.nodes.front() != source) {
    // Broken parent chain: report unreachable rather than a wrong path.
    return Path{};
  }
  return p;
}

}  // namespace

Path ExtractPath(const SearchTree& tree, NodeId source, NodeId target) {
  if (target >= tree.dist.size()) return Path{};
  return ExtractPathImpl([&](NodeId v) { return tree.dist[v]; },
                         [&](NodeId v) { return tree.parent[v]; }, source,
                         target);
}

Path ExtractPath(const SearchWorkspace& ws, NodeId source, NodeId target) {
  return ExtractPathImpl([&](NodeId v) { return ws.DistTo(v); },
                         [&](NodeId v) { return ws.ParentOf(v); }, source,
                         target);
}

Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return kInfDist;
  Dist total = 0;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    Dist best = kInfDist;
    for (const auto& arc : g.OutArcs(nodes[i])) {
      if (arc.to == nodes[i + 1]) best = std::min<Dist>(best, arc.weight);
    }
    if (best == kInfDist) return kInfDist;
    total += best;
  }
  return total;
}

}  // namespace airindex::algo
