#include "algo/dijkstra.h"

#include <algorithm>

namespace airindex::algo {

Path ExtractPath(const SearchTree& tree, NodeId source, NodeId target) {
  Path p;
  if (target >= tree.dist.size() || tree.dist[target] == kInfDist) return p;
  p.dist = tree.dist[target];
  NodeId v = target;
  while (v != kInvalidNode) {
    p.nodes.push_back(v);
    if (v == source) break;
    v = tree.parent[v];
  }
  std::reverse(p.nodes.begin(), p.nodes.end());
  if (p.nodes.empty() || p.nodes.front() != source) {
    // Broken parent chain: report unreachable rather than a wrong path.
    return Path{};
  }
  return p;
}

Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes) {
  if (nodes.empty()) return kInfDist;
  Dist total = 0;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    Dist best = kInfDist;
    for (const auto& arc : g.OutArcs(nodes[i])) {
      if (arc.to == nodes[i + 1]) best = std::min<Dist>(best, arc.weight);
    }
    if (best == kInfDist) return kInfDist;
    total += best;
  }
  return total;
}

}  // namespace airindex::algo
