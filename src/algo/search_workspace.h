#ifndef AIRINDEX_ALGO_SEARCH_WORKSPACE_H_
#define AIRINDEX_ALGO_SEARCH_WORKSPACE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "algo/d_ary_heap.h"
#include "graph/types.h"

namespace airindex::algo {

/// Reusable storage for shortest-path searches (Dijkstra / A*): tentative
/// distances, parent pointers, the frontier heap, and the target-pending
/// set of DijkstraToTargets. A fresh search costs O(n) just to initialize
/// dist/parent; a workspace instead stamps every write with a generation
/// counter and bumps the counter in BeginSearch, so per-search reset is
/// O(1) and a reused workspace allocates nothing in steady state (arrays
/// only grow to the largest graph seen).
///
/// Ownership contract: a workspace is caller-owned scratch, single-threaded
/// by design (one workspace per worker thread), and never an output channel
/// — results read back through DistTo/ParentOf are only valid until the
/// next BeginSearch. The search kernels in dijkstra.h / astar.h run inside
/// a workspace passed by the caller; the legacy SearchTree-returning
/// signatures wrap a local workspace and stay bit-identical.
class SearchWorkspace {
 public:
  /// Heap entry of the Dijkstra kernels: (tentative distance, node).
  /// Lexicographic pair order is a strict total order over the pushed
  /// entries (a node is only re-pushed on strict improvement), which pins
  /// the pop sequence regardless of heap implementation.
  using HeapItem = std::pair<graph::Dist, graph::NodeId>;

  /// Heap entry of the A* kernel: f = g + lower bound, then g, then the
  /// node id as the final tie-break so the expansion order is a pure
  /// function of the inputs.
  struct AStarItem {
    graph::Dist f = 0;
    graph::Dist g = 0;
    graph::NodeId v = graph::kInvalidNode;
    bool operator<(const AStarItem& o) const {
      if (f != o.f) return f < o.f;
      if (g != o.g) return g < o.g;
      return v < o.v;
    }
  };

  /// Starts a new search over a graph of `n` nodes: bumps the generation
  /// (lazily invalidating every previous dist/parent), clears the heaps,
  /// and grows the arrays if this graph is the largest seen so far.
  void BeginSearch(size_t n) {
    if (n > stamp_.size()) {
      stamp_.resize(n, 0);
      pending_stamp_.resize(n, 0);
      dist_.resize(n);
      parent_.resize(n);
    }
    ++generation_;
    if (generation_ == 0) {  // wrapped: hard-reset the stamps once
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    ++pending_generation_;
    if (pending_generation_ == 0) {
      std::fill(pending_stamp_.begin(), pending_stamp_.end(), 0);
      pending_generation_ = 1;
    }
    settled_ = 0;
    heap_.clear();
    astar_heap_.clear();
  }

  /// Nodes the arrays can address (high-water across searches).
  size_t capacity() const { return stamp_.size(); }

  /// Whether `v` was reached (relaxed) by the current search.
  bool Visited(graph::NodeId v) const {
    return v < stamp_.size() && stamp_[v] == generation_;
  }

  /// Tentative/final distance of the current search (kInfDist when
  /// unreached, matching SearchTree::dist of the legacy API).
  graph::Dist DistTo(graph::NodeId v) const {
    return Visited(v) ? dist_[v] : graph::kInfDist;
  }

  /// Parent in the shortest-path tree (kInvalidNode when unreached).
  graph::NodeId ParentOf(graph::NodeId v) const {
    return Visited(v) ? parent_[v] : graph::kInvalidNode;
  }

  /// Nodes settled by the current search (the paper's client-CPU proxy).
  size_t settled() const { return settled_; }

  // --- Kernel API (used by the search templates; callers normally only
  // --- read results through the accessors above). `v` must be < the `n`
  // --- of the last BeginSearch — same contract as indexing the legacy
  // --- SearchTree vectors.

  /// Records `d` via `parent` if it improves on the current tentative
  /// distance; returns whether it did (i.e. whether to push a heap entry).
  bool TryImprove(graph::NodeId v, graph::Dist d, graph::NodeId parent) {
    if (stamp_[v] == generation_) {
      if (d >= dist_[v]) return false;
    } else {
      stamp_[v] = generation_;
    }
    dist_[v] = d;
    parent_[v] = parent;
    return true;
  }

  /// Current tentative distance without the bounds check of DistTo.
  graph::Dist TentativeDist(graph::NodeId v) const {
    return stamp_[v] == generation_ ? dist_[v] : graph::kInfDist;
  }

  void CountSettled() { ++settled_; }

  /// Target-pending set of DijkstraToTargets. MarkPending returns false if
  /// `v` was already pending in this search (duplicate target).
  bool MarkPending(graph::NodeId v) {
    if (pending_stamp_[v] == pending_generation_) return false;
    pending_stamp_[v] = pending_generation_;
    return true;
  }
  bool IsPending(graph::NodeId v) const {
    return pending_stamp_[v] == pending_generation_;
  }
  void ClearPending(graph::NodeId v) { pending_stamp_[v] = 0; }

  DAryHeap<HeapItem>& heap() { return heap_; }
  DAryHeap<AStarItem>& astar_heap() { return astar_heap_; }

 private:
  std::vector<graph::Dist> dist_;
  std::vector<graph::NodeId> parent_;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> pending_stamp_;
  uint32_t generation_ = 0;
  uint32_t pending_generation_ = 0;
  size_t settled_ = 0;
  DAryHeap<HeapItem> heap_;
  DAryHeap<AStarItem> astar_heap_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_SEARCH_WORKSPACE_H_
