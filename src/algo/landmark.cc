#include "algo/landmark.h"

#include <algorithm>

#include "algo/astar.h"
#include "algo/dijkstra.h"
#include "common/rng.h"

namespace airindex::algo {

Result<LandmarkIndex> LandmarkIndex::Build(const graph::Graph& g,
                                           uint32_t num_landmarks,
                                           uint64_t seed) {
  const size_t n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (num_landmarks == 0 || num_landmarks > n) {
    return Status::InvalidArgument("num_landmarks out of range");
  }

  LandmarkIndex idx;
  graph::Graph rev = g.Reversed();
  Rng rng(seed);

  // Farthest-point selection: the first landmark is the node farthest from a
  // random start; each next landmark maximizes the minimum distance to the
  // already-chosen set. This is the selection heuristic of Goldberg &
  // Harrelson that the paper cites.
  NodeId start = static_cast<NodeId>(rng.NextBounded(n));
  std::vector<Dist> min_dist(n, kInfDist);
  NodeId current = start;
  for (uint32_t l = 0; l < num_landmarks; ++l) {
    SearchTree tree = DijkstraAll(g, current);
    NodeId farthest = current;
    Dist best = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (tree.dist[v] == kInfDist) continue;
      min_dist[v] = std::min(min_dist[v], tree.dist[v]);
      if (min_dist[v] >= best &&
          std::find(idx.landmarks_.begin(), idx.landmarks_.end(), v) ==
              idx.landmarks_.end()) {
        best = min_dist[v];
        farthest = v;
      }
    }
    if (l == 0) {
      // Restart the min-distance bookkeeping from the true first landmark.
      min_dist.assign(n, kInfDist);
    }
    idx.landmarks_.push_back(farthest);
    current = farthest;
    // Fold the new landmark's distances in for the next selection round.
    SearchTree from_new = DijkstraAll(g, farthest);
    for (NodeId v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], from_new.dist[v]);
    }
  }

  idx.from_.resize(num_landmarks);
  idx.to_.resize(num_landmarks);
  for (uint32_t l = 0; l < num_landmarks; ++l) {
    idx.from_[l] = DijkstraAll(g, idx.landmarks_[l]).dist;
    idx.to_[l] = DijkstraAll(rev, idx.landmarks_[l]).dist;
  }
  return idx;
}

LandmarkIndex LandmarkIndex::FromVectors(
    std::vector<graph::NodeId> landmarks,
    std::vector<std::vector<graph::Dist>> from,
    std::vector<std::vector<graph::Dist>> to) {
  LandmarkIndex idx;
  idx.landmarks_ = std::move(landmarks);
  idx.from_ = std::move(from);
  idx.to_ = std::move(to);
  return idx;
}

graph::Dist LandmarkIndex::LowerBound(graph::NodeId v,
                                      graph::NodeId t) const {
  Dist best = 0;
  for (uint32_t l = 0; l < num_landmarks(); ++l) {
    const Dist vt_to = to_[l][v];    // d(v, L)
    const Dist tt_to = to_[l][t];    // d(t, L)
    const Dist vf = from_[l][v];     // d(L, v)
    const Dist tf = from_[l][t];     // d(L, t)
    if (vt_to != kInfDist && tt_to != kInfDist && vt_to > tt_to) {
      best = std::max(best, vt_to - tt_to);
    }
    if (vf != kInfDist && tf != kInfDist && tf > vf) {
      best = std::max(best, tf - vf);
    }
  }
  return best;
}

graph::Path LandmarkIndex::Query(const graph::Graph& g, graph::NodeId s,
                                 graph::NodeId t, size_t* settled_out) const {
  return AStarPath(
      g, s, t, [this, t](NodeId v) { return LowerBound(v, t); }, settled_out);
}

size_t LandmarkIndex::MemoryBytes() const {
  size_t bytes = landmarks_.size() * sizeof(graph::NodeId);
  for (const auto& v : from_) bytes += v.size() * sizeof(graph::Dist);
  for (const auto& v : to_) bytes += v.size() * sizeof(graph::Dist);
  return bytes;
}

}  // namespace airindex::algo
