#include "algo/arc_flags.h"

#include <mutex>

#include "algo/dijkstra.h"
#include "common/thread_pool.h"

namespace airindex::algo {

namespace {

/// Maps (from, to) pairs to CSR arc indexes via binary search in the sorted
/// adjacency span.
size_t ArcIndexOf(const graph::Graph& g,
                  const std::vector<uint32_t>& first_arc, graph::NodeId from,
                  graph::NodeId to) {
  auto arcs = g.OutArcs(from);
  size_t lo = 0, hi = arcs.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (arcs[mid].to < to) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return first_arc[from] + lo;
}

/// Prefix of out-degree counts: first_arc[v] = index of v's first arc in the
/// CSR array.
std::vector<uint32_t> FirstArcTable(const graph::Graph& g) {
  std::vector<uint32_t> first(g.num_nodes() + 1, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    first[v + 1] = first[v] + static_cast<uint32_t>(g.OutDegree(v));
  }
  return first;
}

}  // namespace

Result<ArcFlagIndex> ArcFlagIndex::Build(
    const graph::Graph& g, const std::vector<graph::RegionId>& node_region,
    uint32_t num_regions) {
  if (node_region.size() != g.num_nodes()) {
    return Status::InvalidArgument("node_region size mismatch");
  }
  if (num_regions == 0) {
    return Status::InvalidArgument("num_regions must be positive");
  }
  for (graph::RegionId r : node_region) {
    if (r >= num_regions) {
      return Status::InvalidArgument("region id out of range");
    }
  }

  ArcFlagIndex idx;
  idx.num_regions_ = num_regions;
  idx.words_per_arc_ = (num_regions + 63) / 64;
  idx.node_region_ = node_region;
  idx.flags_.assign(g.num_arcs() * idx.words_per_arc_, 0);

  const std::vector<uint32_t> first_arc = FirstArcTable(g);

  // Intra-region flags: an arc whose head lies in R may always be needed to
  // reach R's interior.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (size_t i = 0; i < g.OutDegree(v); ++i) {
      const auto& arc = g.OutArcs(v)[i];
      idx.SetArcFlag(first_arc[v] + i, node_region[arc.to]);
    }
  }

  // Border nodes: head of some arc that crosses regions.
  std::vector<graph::NodeId> border;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bool is_border = false;
    for (const auto& arc : g.OutArcs(v)) {
      if (node_region[arc.to] != node_region[v]) {
        is_border = true;
        break;
      }
    }
    if (is_border) border.push_back(v);
  }

  graph::Graph rev = g.Reversed();

  // One backward Dijkstra per border node; each worker accumulates flags
  // locally, then merges under a mutex (flag OR is commutative).
  std::mutex merge_mu;
  ParallelFor(border.size(), [&](size_t bi) {
    const graph::NodeId b = border[bi];
    const graph::RegionId region = node_region[b];
    SearchTree tree = DijkstraAll(rev, b);
    std::vector<size_t> flagged;
    flagged.reserve(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      graph::NodeId p = tree.parent[v];
      if (p == graph::kInvalidNode) continue;
      // Reverse-tree arc p->v corresponds to forward arc v->p on a shortest
      // v -> b path.
      flagged.push_back(ArcIndexOf(g, first_arc, v, p));
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    for (size_t a : flagged) idx.SetArcFlag(a, region);
  });

  return idx;
}

ArcFlagIndex ArcFlagIndex::MakeEmpty(size_t num_arcs, uint32_t num_regions,
                                     std::vector<graph::RegionId>
                                         node_region) {
  ArcFlagIndex idx;
  idx.num_regions_ = num_regions;
  idx.words_per_arc_ = (num_regions + 63) / 64;
  idx.node_region_ = std::move(node_region);
  idx.flags_.assign(num_arcs * idx.words_per_arc_, 0);
  return idx;
}

void ArcFlagIndex::SetAllFlags(size_t arc_index) {
  for (size_t w = 0; w < words_per_arc_; ++w) {
    flags_[arc_index * words_per_arc_ + w] = ~uint64_t{0};
  }
}

graph::Path ArcFlagIndex::Query(const graph::Graph& g, graph::NodeId s,
                                graph::NodeId t, size_t* settled_out) const {
  const graph::RegionId target_region = node_region_[t];
  const std::vector<uint32_t> first_arc = FirstArcTable(g);

  // The edge filter needs the arc's CSR index; recover it from the span
  // offset.
  SearchTree tree = DijkstraSearch(
      g, s, t, [&](graph::NodeId from, const graph::Graph::Arc& arc) {
        const size_t offset = &arc - g.OutArcs(from).data();
        return ArcAllowed(first_arc[from] + offset, target_region);
      });
  if (settled_out != nullptr) *settled_out = tree.settled;
  return ExtractPath(tree, s, t);
}

}  // namespace airindex::algo
