#ifndef AIRINDEX_ALGO_LANDMARK_H_
#define AIRINDEX_ALGO_LANDMARK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::algo {

/// Landmark (ALT) pre-computation (§2.1): a handful of anchor nodes are
/// chosen and every node stores its graph distance to and from each anchor.
/// The triangle inequality over these vectors yields an admissible lower
/// bound that guides A*.
class LandmarkIndex {
 public:
  /// Builds an index with `num_landmarks` anchors chosen by farthest-point
  /// selection (seeded deterministically), running 2*num_landmarks full
  /// Dijkstras (forward + on the reverse graph).
  static Result<LandmarkIndex> Build(const graph::Graph& g,
                                     uint32_t num_landmarks,
                                     uint64_t seed = 17);

  uint32_t num_landmarks() const {
    return static_cast<uint32_t>(landmarks_.size());
  }
  const std::vector<graph::NodeId>& landmarks() const { return landmarks_; }

  /// d(landmark[l] -> v).
  graph::Dist FromLandmark(uint32_t l, graph::NodeId v) const {
    return from_[l][v];
  }
  /// d(v -> landmark[l]).
  graph::Dist ToLandmark(uint32_t l, graph::NodeId v) const {
    return to_[l][v];
  }

  /// Admissible lower bound on d(v, t):
  ///   max_l max( d(v,L) - d(t,L),  d(L,t) - d(L,v) ).
  graph::Dist LowerBound(graph::NodeId v, graph::NodeId t) const;

  /// Runs the Landmark query: A* guided by LowerBound.
  graph::Path Query(const graph::Graph& g, graph::NodeId s, graph::NodeId t,
                    size_t* settled_out = nullptr) const;

  /// Bytes of pre-computed data per node when broadcast: 2 distance values
  /// (to + from) of 4 bytes per landmark. Drives the LD cycle size (Table 1).
  size_t BytesPerNode() const { return num_landmarks() * 2 * 4; }

  /// Total in-memory size of the distance vectors.
  size_t MemoryBytes() const;

  /// Constructs an index directly from distance vectors (used by the
  /// broadcast client after deserialization).
  static LandmarkIndex FromVectors(std::vector<graph::NodeId> landmarks,
                                   std::vector<std::vector<graph::Dist>> from,
                                   std::vector<std::vector<graph::Dist>> to);

 private:
  LandmarkIndex() = default;

  std::vector<graph::NodeId> landmarks_;
  // from_[l][v] = d(landmark_l, v); to_[l][v] = d(v, landmark_l).
  std::vector<std::vector<graph::Dist>> from_;
  std::vector<std::vector<graph::Dist>> to_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_LANDMARK_H_
