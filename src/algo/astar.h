#ifndef AIRINDEX_ALGO_ASTAR_H_
#define AIRINDEX_ALGO_ASTAR_H_

#include <queue>
#include <utility>
#include <vector>

#include "algo/dijkstra.h"
#include "graph/types.h"

namespace airindex::algo {

/// A* search (§2.1): Dijkstra whose heap keys are increased by an admissible
/// lower bound LB(v, target) on the remaining graph distance. With the
/// always-zero bound it degenerates to plain Dijkstra. The Landmark method
/// supplies ALT bounds; the paper otherwise assumes no a-priori bounds exist
/// in general road networks.
///
/// Generic over the same graph concept as DijkstraSearch. `lower_bound(v)`
/// must be admissible. Nodes are re-expanded whenever their tentative
/// distance improves (stale heap entries are skipped), so the search stays
/// exact even for admissible-but-inconsistent bounds — which arise in the
/// broadcast Landmark client when some distance vectors were lost and fall
/// back to a zero bound (§6.2). With a consistent bound every node still
/// expands exactly once.
template <typename G, typename LowerBound>
Path AStarPath(const G& g, NodeId source, NodeId target,
               LowerBound lower_bound, size_t* settled_out = nullptr) {
  const size_t n = g.num_nodes();
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> parent(n, kInvalidNode);

  // Heap keyed on f = g + h; entries are (f, g, v) so staleness is a plain
  // comparison of g against the current tentative distance.
  struct QueueItem {
    Dist f;
    Dist g;
    NodeId v;
    bool operator>(const QueueItem& o) const {
      return f > o.f || (f == o.f && g > o.g);
    }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({static_cast<Dist>(lower_bound(source)), 0, source});
  size_t expanded = 0;

  while (!heap.empty()) {
    auto [f, gv, v] = heap.top();
    heap.pop();
    if (gv != dist[v]) continue;  // stale entry
    ++expanded;
    if (v == target) break;
    for (const auto& arc : g.OutArcs(v)) {
      const Dist nd = gv + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        parent[arc.to] = v;
        heap.push({nd + static_cast<Dist>(lower_bound(arc.to)), nd, arc.to});
      }
    }
  }
  if (settled_out != nullptr) *settled_out = expanded;

  SearchTree tree;
  tree.dist = std::move(dist);
  tree.parent = std::move(parent);
  tree.settled = expanded;
  return ExtractPath(tree, source, target);
}

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_ASTAR_H_
