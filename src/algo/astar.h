#ifndef AIRINDEX_ALGO_ASTAR_H_
#define AIRINDEX_ALGO_ASTAR_H_

#include <cstddef>

#include "algo/dijkstra.h"
#include "algo/search_workspace.h"
#include "graph/types.h"

namespace airindex::algo {

/// A* search (§2.1): Dijkstra whose heap keys are increased by an admissible
/// lower bound LB(v, target) on the remaining graph distance. With the
/// always-zero bound it degenerates to plain Dijkstra. The Landmark method
/// supplies ALT bounds; the paper otherwise assumes no a-priori bounds exist
/// in general road networks.
///
/// Generic over the same graph concept as DijkstraSearch. `lower_bound(v)`
/// must be admissible. Nodes are re-expanded whenever their tentative
/// distance improves (stale heap entries are skipped), so the search stays
/// exact even for admissible-but-inconsistent bounds — which arise in the
/// broadcast Landmark client when some distance vectors were lost and fall
/// back to a zero bound (§6.2). With a consistent bound every node still
/// expands exactly once.
///
/// Runs inside the caller-provided workspace; read the result through
/// ws.DistTo(target) / ws.settled() or ExtractPath(ws, ...). Expansion
/// order is a pure function of the inputs: ties on (f, g) break by node id
/// (SearchWorkspace::AStarItem), so any heap implementation produces the
/// same search.
template <typename G, typename LowerBound>
void AStarSearch(const G& g, NodeId source, NodeId target,
                 LowerBound lower_bound, SearchWorkspace& ws) {
  ws.BeginSearch(g.num_nodes());
  auto& heap = ws.astar_heap();
  ws.TryImprove(source, 0, kInvalidNode);
  heap.push({static_cast<Dist>(lower_bound(source)), 0, source});

  while (!heap.empty()) {
    auto [f, gv, v] = heap.top();
    heap.pop();
    if (gv != ws.TentativeDist(v)) continue;  // stale entry
    ws.CountSettled();
    if (v == target) break;
    for (const auto& arc : g.OutArcs(v)) {
      const Dist nd = gv + arc.weight;
      if (ws.TryImprove(arc.to, nd, v)) {
        heap.push({nd + static_cast<Dist>(lower_bound(arc.to)), nd, arc.to});
      }
    }
  }
}

/// A* in a caller-provided workspace, materializing the path.
template <typename G, typename LowerBound>
Path AStarPath(const G& g, NodeId source, NodeId target,
               LowerBound lower_bound, SearchWorkspace& ws,
               size_t* settled_out = nullptr) {
  AStarSearch(g, source, target, lower_bound, ws);
  if (settled_out != nullptr) *settled_out = ws.settled();
  return ExtractPath(ws, source, target);
}

/// Legacy convenience overload: throwaway workspace per call.
template <typename G, typename LowerBound>
Path AStarPath(const G& g, NodeId source, NodeId target,
               LowerBound lower_bound, size_t* settled_out = nullptr) {
  SearchWorkspace ws;
  return AStarPath(g, source, target, lower_bound, ws, settled_out);
}

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_ASTAR_H_
