#ifndef AIRINDEX_ALGO_SPQ_H_
#define AIRINDEX_ALGO_SPQ_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::algo {

/// Shortest-path quadtree (SPQ, Samet et al.; §2.1): every node v stores a
/// coloured region quadtree over the Euclidean coordinates of all other
/// nodes, where the colour of u is the incident arc of v that begins the
/// shortest path v -> u. A query repeatedly looks up the target's colour and
/// follows one arc, so each step is a point location.
///
/// The per-node quadtrees are collectively several times larger than the
/// network (Table 1), which is why the paper rules SPQ out on air.
class SpqIndex {
 public:
  /// One quadtree cell. Leaves carry the colour (arc ordinal at the owning
  /// node, or kNoColor for empty cells); internal cells carry 4 child
  /// indexes into the same vector.
  struct QtNode {
    static constexpr int32_t kLeaf = -1;
    static constexpr int32_t kNoColor = -1;
    int32_t child[4] = {kLeaf, kLeaf, kLeaf, kLeaf};
    int32_t color = kNoColor;
    bool is_leaf() const { return child[0] == kLeaf; }
  };

  /// Per-node quadtree (nodes[0] is the root).
  struct Tree {
    std::vector<QtNode> nodes;
  };

  /// Builds the full index: one all-targets Dijkstra plus one quadtree per
  /// node (parallelized). Memory grows with num_nodes * quadtree size, so
  /// use BuildSizeOnly for large networks when only the footprint matters.
  static Result<SpqIndex> Build(const graph::Graph& g);

  /// Computes the serialized broadcast size of the index without retaining
  /// the trees (used for Table 1/2 at larger scales).
  static Result<size_t> BuildSizeOnly(const graph::Graph& g);

  /// First-hop arc ordinal at `v` for a target located at `p`, or
  /// QtNode::kNoColor if the cell is empty (never happens for real targets).
  int32_t ColorOf(graph::NodeId v, graph::Point p) const;

  /// Follows first-hop colours from s to t; exact shortest path.
  graph::Path Query(const graph::Graph& g, graph::NodeId s,
                    graph::NodeId t) const;

  /// Serialized size: per quadtree cell 1 tag byte, plus 2 colour bytes for
  /// leaves. Drives the SPQ row of Table 1.
  size_t IndexBytes() const;

  size_t MemoryBytes() const;

  const Tree& TreeOf(graph::NodeId v) const { return trees_[v]; }

  /// Root cell bounds (serialized in the broadcast header).
  double root_min_x() const { return min_x_; }
  double root_min_y() const { return min_y_; }
  double root_size() const { return size_; }

  /// Reassembles an index from deserialized trees (client side of the
  /// broadcast adaptation).
  static SpqIndex FromParts(double min_x, double min_y, double size,
                            std::vector<Tree> trees);

 private:
  SpqIndex() = default;

  /// Serialized bytes of a single tree.
  static size_t TreeBytes(const Tree& tree);

  double min_x_ = 0, min_y_ = 0, size_ = 1;  // root cell (square)
  std::vector<Tree> trees_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_SPQ_H_
