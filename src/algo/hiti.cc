#include "algo/hiti.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <unordered_map>

#include "algo/dijkstra.h"
#include "common/thread_pool.h"

namespace airindex::algo {
namespace {

using graph::Dist;
using graph::kInfDist;
using graph::kInvalidNode;
using graph::NodeId;
using graph::RegionId;

/// A small graph over an explicit node subset with local dense ids; used for
/// the per-sub-graph Dijkstras so their cost scales with the sub-graph, not
/// the whole network.
struct LocalGraph {
  std::vector<NodeId> globals;                     // local -> global
  std::unordered_map<NodeId, uint32_t> local_of;   // global -> local
  std::vector<std::vector<std::pair<uint32_t, Dist>>> adj;

  uint32_t AddNode(NodeId global) {
    auto [it, inserted] =
        local_of.emplace(global, static_cast<uint32_t>(globals.size()));
    if (inserted) {
      globals.push_back(global);
      adj.emplace_back();
    }
    return it->second;
  }

  void AddArc(uint32_t from, uint32_t to, Dist w) {
    adj[from].emplace_back(to, w);
  }

  struct LocalTree {
    std::vector<Dist> dist;
    std::vector<uint32_t> parent;  // local ids; UINT32_MAX = none
  };

  LocalTree Dijkstra(uint32_t source) const {
    LocalTree tree;
    tree.dist.assign(globals.size(), kInfDist);
    tree.parent.assign(globals.size(), UINT32_MAX);
    using Item = std::pair<Dist, uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    tree.dist[source] = 0;
    heap.emplace(0, source);
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      if (d != tree.dist[v]) continue;
      for (auto [to, w] : adj[v]) {
        if (d + w < tree.dist[to]) {
          tree.dist[to] = d + w;
          tree.parent[to] = v;
          heap.emplace(d + w, to);
        }
      }
    }
    return tree;
  }

  /// First node after `source` on the recorded path to `target` (local
  /// ids); UINT32_MAX when unreachable or equal.
  uint32_t FirstHop(const LocalTree& tree, uint32_t source,
                    uint32_t target) const {
    if (target == source || tree.dist[target] == kInfDist) {
      return UINT32_MAX;
    }
    uint32_t hop = target;
    while (tree.parent[hop] != source) {
      hop = tree.parent[hop];
      if (hop == UINT32_MAX) return UINT32_MAX;
    }
    return hop;
  }
};

/// True iff region r belongs to the sub-tree rooted at heap node h of a
/// complete binary tree with `num_regions` leaves (leaf of region r has heap
/// index num_regions + r).
bool RegionUnder(RegionId r, uint32_t h, uint32_t num_regions) {
  uint32_t leaf = num_regions + r;
  while (leaf > h) leaf >>= 1;
  return leaf == h;
}

}  // namespace

Result<HiTiIndex> HiTiIndex::Build(const graph::Graph& g,
                                   const partition::KdTreePartitioner& kd) {
  HiTiIndex idx;
  idx.num_regions_ = kd.num_regions();
  idx.depth_ = kd.depth();
  idx.part_ = kd.Partition(g);
  const uint32_t R = idx.num_regions_;
  idx.subs_.resize(2 * R);

  const auto& node_region = idx.part_.node_region;

  // Border nodes of every heap sub-graph: endpoints of arcs crossing the
  // sub-graph boundary (both directions). One pass over arcs per level.
  for (uint32_t h = 1; h < 2 * R; ++h) {
    std::vector<uint8_t> is_border(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool v_in = RegionUnder(node_region[v], h, R);
      for (const auto& arc : g.OutArcs(v)) {
        const bool u_in = RegionUnder(node_region[arc.to], h, R);
        if (v_in != u_in) {
          if (v_in) is_border[v] = 1;
          if (u_in) is_border[arc.to] = 1;
        }
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (is_border[v]) idx.subs_[h].border.push_back(v);
    }
  }

  // Bottom-up super-edge computation. Leaves: Dijkstra restricted to the
  // region's nodes. Internal nodes: Dijkstra over the overlay of the two
  // children's super-edges plus the original arcs crossing between them.
  for (uint32_t h = 2 * R - 1; h >= 1; --h) {
    auto& sub = idx.subs_[h];
    const size_t nb = sub.border.size();
    sub.dmat.assign(nb * nb, kInfDist);
    sub.next_hop.assign(nb * nb, graph::kInvalidNode);
    if (nb == 0) {
      if (h == 1) break;
      continue;
    }

    LocalGraph local;
    if (h >= R) {
      // Leaf: full region detail.
      const RegionId r = h - R;
      for (NodeId v : idx.part_.region_nodes[r]) local.AddNode(v);
      for (NodeId v : idx.part_.region_nodes[r]) {
        const uint32_t lv = local.local_of.at(v);
        for (const auto& arc : g.OutArcs(v)) {
          auto it = local.local_of.find(arc.to);
          if (it != local.local_of.end()) {
            local.AddArc(lv, it->second, arc.weight);
          }
        }
      }
    } else {
      // Internal: children overlays.
      for (uint32_t c : {2 * h, 2 * h + 1}) {
        for (NodeId b : idx.subs_[c].border) local.AddNode(b);
      }
      for (uint32_t c : {2 * h, 2 * h + 1}) {
        const auto& child = idx.subs_[c];
        const size_t cb = child.border.size();
        for (size_t i = 0; i < cb; ++i) {
          const uint32_t li = local.local_of.at(child.border[i]);
          for (size_t j = 0; j < cb; ++j) {
            const Dist d = child.dmat[i * cb + j];
            if (i != j && d != kInfDist) {
              local.AddArc(li, local.local_of.at(child.border[j]), d);
            }
          }
          // Original arcs from this border node into the sibling child.
          for (const auto& arc : g.OutArcs(child.border[i])) {
            const RegionId tr = node_region[arc.to];
            if (RegionUnder(tr, h, R) && !RegionUnder(tr, c, R)) {
              // Head is inside h but in the sibling; it carries a crossing
              // arc so it is a border node of the sibling and thus present.
              auto it = local.local_of.find(arc.to);
              if (it != local.local_of.end()) {
                local.AddArc(li, it->second, arc.weight);
              }
            }
          }
        }
      }
    }

    // One Dijkstra per border node of this sub-graph, parallel.
    ParallelFor(nb, [&](size_t i) {
      const uint32_t src = local.local_of.at(sub.border[i]);
      LocalGraph::LocalTree tree = local.Dijkstra(src);
      for (size_t j = 0; j < nb; ++j) {
        const uint32_t dst = local.local_of.at(sub.border[j]);
        sub.dmat[i * nb + j] = tree.dist[dst];
        const uint32_t hop = local.FirstHop(tree, src, dst);
        sub.next_hop[i * nb + j] =
            hop == UINT32_MAX ? graph::kInvalidNode : local.globals[hop];
      }
    });
    if (h == 1) break;
  }
  return idx;
}

HiTiIndex HiTiIndex::FromTables(uint32_t num_regions,
                                partition::Partitioning part,
                                std::vector<SubgraphInfo> subs) {
  HiTiIndex idx;
  idx.num_regions_ = num_regions;
  idx.depth_ = static_cast<uint32_t>(std::countr_zero(num_regions));
  idx.part_ = std::move(part);
  idx.subs_ = std::move(subs);
  return idx;
}

graph::Dist HiTiIndex::QueryDistance(const graph::Graph& g, graph::NodeId s,
                                     graph::NodeId t,
                                     size_t* settled_out) const {
  const uint32_t R = num_regions_;
  const RegionId rs = part_.node_region[s];
  const RegionId rt = part_.node_region[t];
  const uint32_t leaf_s = R + rs;
  const uint32_t leaf_t = R + rt;

  // Ancestor set of the two leaves.
  std::vector<uint8_t> is_ancestor(2 * R, 0);
  for (uint32_t h = leaf_s; h >= 1; h >>= 1) is_ancestor[h] = 1;
  for (uint32_t h = leaf_t; h >= 1; h >>= 1) is_ancestor[h] = 1;

  // Used super-edge sub-graphs: maximal sub-trees containing neither leaf.
  std::vector<uint32_t> used;
  for (uint32_t h = 2; h < 2 * R; ++h) {
    if (!is_ancestor[h] && is_ancestor[h / 2]) used.push_back(h);
  }

  // Overlay adjacency keyed by global node id.
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, Dist>>> adj;
  auto add_arc = [&adj](NodeId a, NodeId b, Dist w) {
    adj[a].emplace_back(b, w);
  };

  // Full detail inside the two leaf regions (arcs may exit toward border
  // nodes of used sub-graphs, which are present in the overlay).
  for (RegionId r : {rs, rt}) {
    for (NodeId v : part_.region_nodes[r]) {
      for (const auto& arc : g.OutArcs(v)) {
        add_arc(v, arc.to, arc.weight);
      }
    }
    if (rs == rt) break;
  }

  // Super-edges of used sub-graphs plus their outgoing crossing arcs.
  for (uint32_t h : used) {
    const SubgraphInfo& sub = subs_[h];
    const size_t nb = sub.border.size();
    for (size_t i = 0; i < nb; ++i) {
      for (size_t j = 0; j < nb; ++j) {
        const Dist d = sub.dmat[i * nb + j];
        if (i != j && d != kInfDist) add_arc(sub.border[i], sub.border[j], d);
      }
      for (const auto& arc : g.OutArcs(sub.border[i])) {
        if (!RegionUnder(part_.node_region[arc.to], h, R)) {
          add_arc(sub.border[i], arc.to, arc.weight);
        }
      }
    }
  }

  // Plain Dijkstra over the overlay.
  std::unordered_map<NodeId, Dist> dist;
  using Item = std::pair<Dist, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[s] = 0;
  heap.emplace(0, s);
  size_t settled = 0;
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    auto it = dist.find(v);
    if (it == dist.end() || it->second != d) continue;
    ++settled;
    if (v == t) {
      if (settled_out != nullptr) *settled_out = settled;
      return d;
    }
    auto adj_it = adj.find(v);
    if (adj_it == adj.end()) continue;
    for (auto [to, w] : adj_it->second) {
      auto [dit, inserted] = dist.try_emplace(to, d + w);
      if (!inserted && dit->second <= d + w) continue;
      dit->second = d + w;
      heap.emplace(d + w, to);
    }
  }
  if (settled_out != nullptr) *settled_out = settled;
  return kInfDist;
}

size_t HiTiIndex::IndexBytes() const {
  size_t bytes = 0;
  for (uint32_t h = 1; h < subs_.size(); ++h) {
    const auto& sub = subs_[h];
    bytes += 4 + sub.border.size() * 4 + sub.dmat.size() * 4 +
             sub.next_hop.size() * 4;
  }
  return bytes;
}

size_t HiTiIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (uint32_t h = 1; h < subs_.size(); ++h) {
    const auto& sub = subs_[h];
    bytes += sub.border.size() * sizeof(NodeId) +
             sub.dmat.size() * sizeof(Dist) +
             sub.next_hop.size() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace airindex::algo
