#ifndef AIRINDEX_ALGO_DIJKSTRA_H_
#define AIRINDEX_ALGO_DIJKSTRA_H_

#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::algo {

using graph::Dist;
using graph::Graph;
using graph::kInfDist;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Path;

/// Result of a Dijkstra run: per-node distances, the shortest-path tree
/// (parent pointers), and the number of settled nodes (the paper's proxy for
/// client CPU work).
struct SearchTree {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  size_t settled = 0;
};

/// Generic Dijkstra over any graph type exposing
///   size_t num_nodes() const
///   <range of {to, weight}> OutArcs(NodeId) const
/// (satisfied by graph::Graph and by the client-side PartialGraph).
///
/// `target`: stop as soon as this node is settled (kInvalidNode = settle
/// everything). `edge_filter(from, arc)` returning false skips an arc; it is
/// how ArcFlag restricts the search and how clients ignore adjacency entries
/// pointing at nodes they never received.
template <typename G, typename EdgeFilter>
SearchTree DijkstraSearch(const G& g, NodeId source, NodeId target,
                          EdgeFilter edge_filter) {
  const size_t n = g.num_nodes();
  SearchTree out;
  out.dist.assign(n, kInfDist);
  out.parent.assign(n, kInvalidNode);

  using QueueItem = std::pair<Dist, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> heap;
  out.dist[source] = 0;
  heap.emplace(0, source);

  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != out.dist[v]) continue;  // stale entry
    ++out.settled;
    if (v == target) break;
    for (const auto& arc : g.OutArcs(v)) {
      if (!edge_filter(v, arc)) continue;
      Dist nd = d + arc.weight;
      if (nd < out.dist[arc.to]) {
        out.dist[arc.to] = nd;
        out.parent[arc.to] = v;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return out;
}

/// Accept-everything edge filter.
struct AllEdges {
  template <typename Arc>
  bool operator()(NodeId, const Arc&) const {
    return true;
  }
};

/// Full single-source Dijkstra (settles every reachable node).
template <typename G>
SearchTree DijkstraAll(const G& g, NodeId source) {
  return DijkstraSearch(g, source, kInvalidNode, AllEdges{});
}

/// Single-source Dijkstra that stops once every node in `targets` is
/// settled. Used by the border-pair pre-computation, where only
/// border-to-border distances matter.
template <typename G>
SearchTree DijkstraToTargets(const G& g, NodeId source,
                             const std::vector<NodeId>& targets) {
  const size_t n = g.num_nodes();
  std::vector<uint8_t> pending(n, 0);
  size_t remaining = 0;
  for (NodeId t : targets) {
    if (!pending[t]) {
      pending[t] = 1;
      ++remaining;
    }
  }

  SearchTree out;
  out.dist.assign(n, kInfDist);
  out.parent.assign(n, kInvalidNode);
  using QueueItem = std::pair<Dist, NodeId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> heap;
  out.dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty() && remaining > 0) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != out.dist[v]) continue;
    ++out.settled;
    if (pending[v]) {
      pending[v] = 0;
      --remaining;
    }
    for (const auto& arc : g.OutArcs(v)) {
      Dist nd = d + arc.weight;
      if (nd < out.dist[arc.to]) {
        out.dist[arc.to] = nd;
        out.parent[arc.to] = v;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return out;
}

/// Walks the parent chain of `tree` (a search from `source`) backwards from
/// `target`. Returns an unreachable Path if target was not reached.
Path ExtractPath(const SearchTree& tree, NodeId source, NodeId target);

/// Point-to-point shortest path on a full graph (the paper's baseline query
/// and the ground truth used by every test).
template <typename G>
Path DijkstraPath(const G& g, NodeId source, NodeId target) {
  SearchTree tree = DijkstraSearch(g, source, target, AllEdges{});
  return ExtractPath(tree, source, target);
}

/// Sums edge weights along `nodes`, verifying each hop exists in `g`.
/// Returns kInfDist if some hop is missing — used by tests and by clients to
/// sanity-check reconstructed paths.
Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_DIJKSTRA_H_
