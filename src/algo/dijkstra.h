#ifndef AIRINDEX_ALGO_DIJKSTRA_H_
#define AIRINDEX_ALGO_DIJKSTRA_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "algo/search_workspace.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::algo {

using graph::Dist;
using graph::Graph;
using graph::kInfDist;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Path;

/// Result of a Dijkstra run: per-node distances, the shortest-path tree
/// (parent pointers), and the number of settled nodes (the paper's proxy for
/// client CPU work).
struct SearchTree {
  std::vector<Dist> dist;
  std::vector<NodeId> parent;
  size_t settled = 0;
};

/// Accept-everything edge filter.
struct AllEdges {
  template <typename Arc>
  bool operator()(NodeId, const Arc&) const {
    return true;
  }
};

/// Generic Dijkstra over any graph type exposing
///   size_t num_nodes() const
///   <range of {to, weight}> OutArcs(NodeId) const
/// (satisfied by graph::Graph and by the client-side PartialGraph).
///
/// Runs inside the caller-provided workspace (O(1) per-search reset, no
/// allocation in steady state); read results through ws.DistTo /
/// ws.ParentOf / ws.settled(), valid until the workspace's next search.
///
/// `target`: stop as soon as this node is settled (kInvalidNode = settle
/// everything). `edge_filter(from, arc)` returning false skips an arc; it is
/// how ArcFlag restricts the search and how clients ignore adjacency entries
/// pointing at nodes they never received.
template <typename G, typename EdgeFilter>
void DijkstraSearch(const G& g, NodeId source, NodeId target,
                    EdgeFilter edge_filter, SearchWorkspace& ws) {
  ws.BeginSearch(g.num_nodes());
  auto& heap = ws.heap();
  ws.TryImprove(source, 0, kInvalidNode);
  heap.push({0, source});

  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != ws.TentativeDist(v)) continue;  // stale entry
    ws.CountSettled();
    if (v == target) break;
    for (const auto& arc : g.OutArcs(v)) {
      if (!edge_filter(v, arc)) continue;
      Dist nd = d + arc.weight;
      if (ws.TryImprove(arc.to, nd, v)) heap.push({nd, arc.to});
    }
  }
}

/// Single-source Dijkstra that stops once every node in `targets` is
/// settled, run inside the caller's workspace. Used by the border-pair
/// pre-computation, where only border-to-border distances matter.
template <typename G>
void DijkstraToTargets(const G& g, NodeId source,
                       const std::vector<NodeId>& targets,
                       SearchWorkspace& ws) {
  ws.BeginSearch(g.num_nodes());
  size_t remaining = 0;
  for (NodeId t : targets) {
    if (ws.MarkPending(t)) ++remaining;
  }

  auto& heap = ws.heap();
  ws.TryImprove(source, 0, kInvalidNode);
  heap.push({0, source});
  while (!heap.empty() && remaining > 0) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != ws.TentativeDist(v)) continue;
    ws.CountSettled();
    if (ws.IsPending(v)) {
      ws.ClearPending(v);
      --remaining;
    }
    for (const auto& arc : g.OutArcs(v)) {
      Dist nd = d + arc.weight;
      if (ws.TryImprove(arc.to, nd, v)) heap.push({nd, arc.to});
    }
  }
}

/// Full single-source Dijkstra (settles every reachable node) in the
/// caller's workspace.
template <typename G>
void DijkstraAll(const G& g, NodeId source, SearchWorkspace& ws) {
  DijkstraSearch(g, source, kInvalidNode, AllEdges{}, ws);
}

/// Copies the workspace's current search into a standalone SearchTree of
/// `n` nodes (unreached entries become kInfDist / kInvalidNode). This is
/// how the legacy value-returning API is produced from a workspace run.
SearchTree MaterializeSearchTree(const SearchWorkspace& ws, size_t n);

/// Legacy value-returning Dijkstra: runs in a throwaway workspace and
/// materializes the tree. Bit-identical to the historical implementation;
/// hot paths should prefer the workspace overload above.
template <typename G, typename EdgeFilter>
SearchTree DijkstraSearch(const G& g, NodeId source, NodeId target,
                          EdgeFilter edge_filter) {
  SearchWorkspace ws;
  DijkstraSearch(g, source, target, edge_filter, ws);
  return MaterializeSearchTree(ws, g.num_nodes());
}

/// Full single-source Dijkstra (settles every reachable node).
template <typename G>
SearchTree DijkstraAll(const G& g, NodeId source) {
  return DijkstraSearch(g, source, kInvalidNode, AllEdges{});
}

/// Legacy value-returning variant of DijkstraToTargets.
template <typename G>
SearchTree DijkstraToTargets(const G& g, NodeId source,
                             const std::vector<NodeId>& targets) {
  SearchWorkspace ws;
  DijkstraToTargets(g, source, targets, ws);
  return MaterializeSearchTree(ws, g.num_nodes());
}

/// Walks the parent chain of `tree` (a search from `source`) backwards from
/// `target`. Returns an unreachable Path if target was not reached.
Path ExtractPath(const SearchTree& tree, NodeId source, NodeId target);

/// Same, reading straight out of a workspace search.
Path ExtractPath(const SearchWorkspace& ws, NodeId source, NodeId target);

/// Point-to-point shortest path on a full graph (the paper's baseline query
/// and the ground truth used by every test).
template <typename G>
Path DijkstraPath(const G& g, NodeId source, NodeId target) {
  SearchWorkspace ws;
  DijkstraSearch(g, source, target, AllEdges{}, ws);
  return ExtractPath(ws, source, target);
}

/// Sums edge weights along `nodes`, verifying each hop exists in `g`.
/// Returns kInfDist if some hop is missing — used by tests and by clients to
/// sanity-check reconstructed paths.
Dist PathLength(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_DIJKSTRA_H_
