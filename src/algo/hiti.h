#ifndef AIRINDEX_ALGO_HITI_H_
#define AIRINDEX_ALGO_HITI_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "partition/kd_tree.h"
#include "partition/partitioning.h"

namespace airindex::algo {

/// HiTi (Jung & Pramanik; §2.1): the graph is partitioned into cells whose
/// sub-graphs are recursively merged into a binary hierarchy (we reuse the
/// kd-tree hierarchy, whose leaves are the partition regions). For every
/// sub-graph at every level, the shortest-path distances among its border
/// nodes ("super-edges") are pre-computed bottom-up. A query searches the
/// union of (a) the fully-detailed leaf regions of source and target and
/// (b) the super-edge graphs of the maximal sub-trees that contain neither,
/// which is exact and touches only O(border) nodes elsewhere.
///
/// In the broadcast setting HiTi is the one classic index that supports
/// selective tuning, but its super-edge tables are several times larger than
/// the network itself (Table 1) and must be received in full, which is what
/// rules it out on real devices (Table 2).
class HiTiIndex {
 public:
  /// Creates an empty index (populate via Build or FromTables).
  HiTiIndex() = default;

  /// Super-edge table of one hierarchy sub-graph (heap node).
  struct SubgraphInfo {
    /// Border nodes of the sub-graph, ascending global ids.
    std::vector<graph::NodeId> border;
    /// Row-major |border| x |border| shortest-path distance matrix within
    /// the sub-graph (kInfDist when disconnected inside it).
    std::vector<graph::Dist> dmat;
    /// Row-major first-hop matrix: the node following border[i] on the
    /// recorded shortest path to border[j] inside the sub-graph
    /// (kInvalidNode on the diagonal / when unreachable). HiTi materializes
    /// path views, not just distances, which is a large part of its index
    /// volume (§3.2, Table 1).
    std::vector<graph::NodeId> next_hop;
  };

  /// Builds the index bottom-up over the kd hierarchy. One local Dijkstra
  /// per (sub-graph, border node) pair, parallelized.
  static Result<HiTiIndex> Build(const graph::Graph& g,
                                 const partition::KdTreePartitioner& kd);

  uint32_t num_regions() const { return num_regions_; }

  /// Exact point-to-point distance via the hierarchy overlay search.
  graph::Dist QueryDistance(const graph::Graph& g, graph::NodeId s,
                            graph::NodeId t, size_t* settled_out =
                                                  nullptr) const;

  /// Super-edge table of heap node `heap` (1-based; leaves are
  /// num_regions()..2*num_regions()-1).
  const SubgraphInfo& Info(uint32_t heap) const { return subs_[heap]; }

  /// Serialized size of all super-edge tables when broadcast:
  /// per sub-graph 4 bytes (border count) + 4 bytes per border id + 8 bytes
  /// per cell (distance + first hop). Drives the HiTi row of Table 1.
  size_t IndexBytes() const;

  /// In-memory footprint of the tables (what a client must hold, §3.2).
  size_t MemoryBytes() const;

  const partition::Partitioning& partitioning() const { return part_; }

  /// Reassembles an index from deserialized tables (client side of the
  /// broadcast adaptation). `subs` must have 2*num_regions entries with
  /// entry 0 unused.
  static HiTiIndex FromTables(uint32_t num_regions,
                              partition::Partitioning part,
                              std::vector<SubgraphInfo> subs);

 private:

  uint32_t num_regions_ = 0;
  uint32_t depth_ = 0;
  partition::Partitioning part_;
  /// subs_[heap] for heap in [1, 2*num_regions); subs_[0] unused.
  std::vector<SubgraphInfo> subs_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_HITI_H_
