#ifndef AIRINDEX_ALGO_ARC_FLAGS_H_
#define AIRINDEX_ALGO_ARC_FLAGS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::algo {

/// ArcFlag pre-computation (§2.1, Köhler et al.): given a node partition,
/// every arc carries a bit vector with one bit per region; the bit for
/// region R is set iff the arc lies on a shortest path toward some node in
/// R. A query toward target t then only relaxes arcs whose bit for t's
/// region is set.
///
/// Flags are computed the standard way: for every region R and every border
/// node b of R, a backward Dijkstra from b builds a reverse shortest-path
/// tree and flags every tree arc for R. Arcs whose head lies in R are
/// flagged for R unconditionally so the search can move within the target
/// region.
class ArcFlagIndex {
 public:
  /// `node_region[v]` maps each node to its region id in
  /// [0, num_regions). Runs one backward Dijkstra per border node
  /// (parallelized across cores).
  static Result<ArcFlagIndex> Build(const graph::Graph& g,
                                    const std::vector<graph::RegionId>&
                                        node_region,
                                    uint32_t num_regions);

  uint32_t num_regions() const { return num_regions_; }
  size_t words_per_arc() const { return words_per_arc_; }

  /// True iff arc #`arc_index` (position in the graph's CSR arc array) may
  /// lie on a shortest path into `region`.
  bool ArcAllowed(size_t arc_index, graph::RegionId region) const {
    const uint64_t word =
        flags_[arc_index * words_per_arc_ + region / 64];
    return (word >> (region % 64)) & 1;
  }

  /// Sets the flag (used when deserializing broadcast data and by the
  /// packet-loss fallback that treats lost flag packets as all-ones).
  void SetArcFlag(size_t arc_index, graph::RegionId region) {
    flags_[arc_index * words_per_arc_ + region / 64] |=
        uint64_t{1} << (region % 64);
  }

  /// Marks every region bit of an arc (the §6.2 loss fallback).
  void SetAllFlags(size_t arc_index);

  /// Dijkstra restricted to arcs flagged for `t`'s region.
  graph::Path Query(const graph::Graph& g, graph::NodeId s, graph::NodeId t,
                    size_t* settled_out = nullptr) const;

  /// Bytes of flag data per arc when broadcast: two bytes per region.
  /// Working the paper's own Table 1 backwards — (29233 - 14019) packets x
  /// 128 B over Germany's 60 858 directed arcs at the tuned 16 regions —
  /// gives almost exactly 2 bytes per region per arc, so that is the wire
  /// format we reproduce. Drives the AF row of Table 1.
  size_t BytesPerArc() const { return 2 * static_cast<size_t>(num_regions_); }

  size_t MemoryBytes() const { return flags_.size() * sizeof(uint64_t); }

  /// Raw flag words for arc `arc_index` (serialization helper).
  const uint64_t* ArcWords(size_t arc_index) const {
    return flags_.data() + arc_index * words_per_arc_;
  }

  /// Creates an empty (all-zero) index to be filled via SetArcFlag
  /// (deserialization path).
  static ArcFlagIndex MakeEmpty(size_t num_arcs, uint32_t num_regions,
                                std::vector<graph::RegionId> node_region);

  const std::vector<graph::RegionId>& node_region() const {
    return node_region_;
  }

 private:
  ArcFlagIndex() = default;

  uint32_t num_regions_ = 0;
  size_t words_per_arc_ = 0;
  std::vector<graph::RegionId> node_region_;
  // flags_[arc * words_per_arc_ + w]: bit r%64 of word r/64 = region r.
  std::vector<uint64_t> flags_;
};

}  // namespace airindex::algo

#endif  // AIRINDEX_ALGO_ARC_FLAGS_H_
