#ifndef AIRINDEX_WORKLOAD_WORKLOAD_H_
#define AIRINDEX_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::workload {

/// One shortest-path query (§7: random source/destination nodes).
struct Query {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId target = graph::kInvalidNode;
  /// Ground-truth distance (plain Dijkstra on the full graph).
  graph::Dist true_dist = graph::kInfDist;
  /// When the client tunes in, as a fraction of the broadcast cycle
  /// (method cycles differ in length, so the instant is stored
  /// cycle-relative).
  double tune_phase = 0.0;
};

struct Workload {
  std::vector<Query> queries;
};

/// Generates `count` uniform random s != t queries with ground truth
/// (Dijkstras run in parallel) and uniform tune-in phases.
Result<Workload> GenerateWorkload(const graph::Graph& g, size_t count,
                                  uint64_t seed);

/// Buckets query indexes by true shortest-path length into `buckets`
/// equal-width ranges over [0, max_dist] (Fig. 10's "SP Range" axis). The
/// paper uses 4 buckets over the observed path lengths.
std::vector<std::vector<size_t>> BucketizeByLength(const Workload& w,
                                                   int buckets);

/// Largest ground-truth distance in the workload.
graph::Dist MaxTrueDist(const Workload& w);

}  // namespace airindex::workload

#endif  // AIRINDEX_WORKLOAD_WORKLOAD_H_
