#ifndef AIRINDEX_WORKLOAD_WORKLOAD_H_
#define AIRINDEX_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "workload/arrival.h"

namespace airindex::workload {

/// One shortest-path query (§7: random source/destination nodes).
struct Query {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId target = graph::kInvalidNode;
  /// Ground-truth distance (plain Dijkstra on the full graph).
  graph::Dist true_dist = graph::kInfDist;
  /// When the client tunes in, as a fraction of the broadcast cycle
  /// (method cycles differ in length, so the instant is stored
  /// cycle-relative).
  double tune_phase = 0.0;
  /// When the client poses the query on the shared station clock,
  /// milliseconds since the station started (event-engine model). Negative
  /// means "no arrival process": the event engine derives the arrival from
  /// tune_phase, and the batch engine ignores it either way.
  double arrival_ms = -1.0;
};

struct Workload {
  std::vector<Query> queries;
};

/// Declarative description of a query population. The paper evaluates one
/// homogeneous population (uniform random s/t, uniform tune-in); the spec
/// generalizes each axis independently so scenario client groups can model
/// hotspot destinations, commuter source clusters, and rush-hour tune-in
/// bursts without new generator code per combination.
struct WorkloadSpec {
  size_t count = 100;
  uint64_t seed = 20100913;

  /// Destination choice. kZipf ranks nodes by a seed-derived permutation
  /// and samples rank r with probability ∝ 1/(r+1)^zipf_s, concentrating
  /// queries onto a few hotspot destinations (downtown, the stadium).
  enum class Dest { kUniform, kZipf } dest = Dest::kUniform;
  double zipf_s = 1.1;

  /// Source choice. kClustered draws sources only from the nodes of the
  /// named kd-tree cells (the same §4.1 partitioner the indexes broadcast),
  /// modelling clients concentrated in a few districts.
  enum class Source { kUniform, kClustered } source = Source::kUniform;
  /// Kd-tree leaf count used to resolve source_regions (power of two >= 2).
  uint32_t partition_regions = 16;
  /// Cells sources are drawn from (required non-empty for kClustered).
  std::vector<uint32_t> source_regions;

  /// Tune-in instant. kRushHour concentrates phases in a triangular burst
  /// of half-width phase_width around phase_peak (wrapped mod 1), modelling
  /// synchronized commute-time tune-ins.
  enum class Phase { kUniform, kRushHour } phase = Phase::kUniform;
  double phase_peak = 0.35;
  double phase_width = 0.08;

  /// Arrival process on the shared station clock (event engine). Sampled
  /// from its own salted stream, so enabling arrivals never perturbs the
  /// query population above — the batch path stays bit-identical.
  ArrivalSpec arrival;

  /// Client sessions (event engine). A session is a run of `queries`
  /// consecutive workload queries posed by one persistent client: the
  /// first query arrives per the arrival process above, each later one
  /// `think_ms` after the previous answer, and the client's SessionCache
  /// carries decoded segments across them (warm queries). queries = 1 is
  /// the historical one-shot fleet. Purely a grouping of the generated
  /// sequence — enabling sessions never perturbs the query population.
  struct SessionSpec {
    uint32_t queries = 1;
    double think_ms = 0.0;

    bool operator==(const SessionSpec&) const = default;
  } session;

  bool operator==(const WorkloadSpec&) const = default;
};

/// Generates a workload per `spec` with ground truth (Dijkstras run in
/// parallel; the sampling pass is serial, so results are identical for
/// every thread count). A default-constructed spec reproduces the paper's
/// population — and the exact query sequence of the (count, seed) overload.
Result<Workload> GenerateWorkload(const graph::Graph& g,
                                  const WorkloadSpec& spec);

/// Generates `count` uniform random s != t queries with ground truth and
/// uniform tune-in phases (the paper's §7 population).
Result<Workload> GenerateWorkload(const graph::Graph& g, size_t count,
                                  uint64_t seed);

/// Per-node destination probability mass of `spec` over `num_nodes` nodes —
/// the analytic form of the distribution GenerateWorkload samples from
/// (uniform: 1/n everywhere; zipf: the seed-derived rank permutation with
/// p(rank r) ∝ 1/(r+1)^zipf_s). Lets a broadcast planner weight content by
/// expected demand without sampling a workload first.
std::vector<double> DestinationWeights(size_t num_nodes,
                                       const WorkloadSpec& spec);

/// Buckets query indexes by true shortest-path length into `buckets`
/// equal-width ranges over [0, max_dist] (Fig. 10's "SP Range" axis). The
/// paper uses 4 buckets over the observed path lengths.
std::vector<std::vector<size_t>> BucketizeByLength(const Workload& w,
                                                   int buckets);

/// Largest ground-truth distance in the workload.
graph::Dist MaxTrueDist(const Workload& w);

}  // namespace airindex::workload

#endif  // AIRINDEX_WORKLOAD_WORKLOAD_H_
