#include "workload/workload.h"

#include <algorithm>

#include "algo/dijkstra.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace airindex::workload {

Result<Workload> GenerateWorkload(const graph::Graph& g, size_t count,
                                  uint64_t seed) {
  if (g.num_nodes() < 2) return Status::InvalidArgument("graph too small");
  Rng rng(seed);
  Workload w;
  w.queries.resize(count);
  for (auto& q : w.queries) {
    q.source = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    do {
      q.target = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    } while (q.target == q.source);
    q.tune_phase = rng.NextDouble();
  }
  ParallelFor(count, [&](size_t i) {
    auto& q = w.queries[i];
    q.true_dist = algo::DijkstraSearch(g, q.source, q.target,
                                       algo::AllEdges{})
                      .dist[q.target];
  });
  for (const auto& q : w.queries) {
    if (q.true_dist == graph::kInfDist) {
      return Status::FailedPrecondition(
          "workload contains an unreachable pair; the network is not "
          "strongly connected");
    }
  }
  return w;
}

std::vector<std::vector<size_t>> BucketizeByLength(const Workload& w,
                                                   int buckets) {
  std::vector<std::vector<size_t>> out(buckets);
  const graph::Dist max_dist = MaxTrueDist(w);
  if (max_dist == 0) return out;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const auto b = static_cast<int>(
        static_cast<unsigned long long>(w.queries[i].true_dist) * buckets /
        (max_dist + 1));
    out[std::min(b, buckets - 1)].push_back(i);
  }
  return out;
}

graph::Dist MaxTrueDist(const Workload& w) {
  graph::Dist max_dist = 0;
  for (const auto& q : w.queries) max_dist = std::max(max_dist, q.true_dist);
  return max_dist;
}

}  // namespace airindex::workload
