#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "algo/dijkstra.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "partition/kd_tree.h"

namespace airindex::workload {

namespace {

/// Node pool the sources of a spec are drawn from: every node for kUniform,
/// the union of the requested kd-cells for kClustered.
Result<std::vector<graph::NodeId>> SourcePool(const graph::Graph& g,
                                              const WorkloadSpec& spec) {
  if (spec.source == WorkloadSpec::Source::kUniform) return std::vector<graph::NodeId>{};
  if (spec.source_regions.empty()) {
    return Status::InvalidArgument(
        "clustered sources require at least one source region");
  }
  AIRINDEX_ASSIGN_OR_RETURN(
      partition::KdTreePartitioner tree,
      partition::KdTreePartitioner::Build(g, spec.partition_regions));
  partition::Partitioning part = tree.Partition(g);
  std::vector<graph::NodeId> pool;
  for (uint32_t cell : spec.source_regions) {
    if (cell >= part.num_regions) {
      return Status::InvalidArgument("source region id out of range");
    }
    const auto& nodes = part.region_nodes[cell];
    pool.insert(pool.end(), nodes.begin(), nodes.end());
  }
  if (pool.empty()) {
    return Status::InvalidArgument("requested source regions hold no nodes");
  }
  std::sort(pool.begin(), pool.end());
  return pool;
}

/// Zipf destination sampler: node ids are ranked by a seed-derived
/// Fisher-Yates permutation; rank r is drawn with probability
/// ∝ 1/(r+1)^s via inverse-CDF binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s, uint64_t seed) : perm_(n), cdf_(n) {
    std::iota(perm_.begin(), perm_.end(), graph::NodeId{0});
    Rng rng(seed ^ 0x5a1fD15Cull);
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(perm_[i], perm_[rng.NextBounded(i + 1)]);
    }
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  graph::NodeId Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t rank = it == cdf_.end() ? cdf_.size() - 1
                                         : static_cast<size_t>(it - cdf_.begin());
    return perm_[rank];
  }

 private:
  std::vector<graph::NodeId> perm_;
  std::vector<double> cdf_;
};

double WrapUnit(double x) {
  x -= std::floor(x);
  return x >= 1.0 ? 0.0 : x;
}

}  // namespace

Result<Workload> GenerateWorkload(const graph::Graph& g,
                                  const WorkloadSpec& spec) {
  if (g.num_nodes() < 2) return Status::InvalidArgument("graph too small");
  if (spec.dest == WorkloadSpec::Dest::kZipf && spec.zipf_s <= 0.0) {
    return Status::InvalidArgument("zipf exponent must be positive");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::vector<graph::NodeId> source_pool,
                            SourcePool(g, spec));
  std::unique_ptr<ZipfSampler> zipf;
  if (spec.dest == WorkloadSpec::Dest::kZipf) {
    zipf = std::make_unique<ZipfSampler>(g.num_nodes(), spec.zipf_s,
                                         spec.seed);
  }

  Rng rng(spec.seed);
  Workload w;
  w.queries.resize(spec.count);
  for (auto& q : w.queries) {
    if (source_pool.empty()) {
      q.source = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    } else {
      q.source = source_pool[rng.NextBounded(source_pool.size())];
    }
    do {
      q.target = zipf ? zipf->Sample(rng)
                      : static_cast<graph::NodeId>(
                            rng.NextBounded(g.num_nodes()));
    } while (q.target == q.source);
    if (spec.phase == WorkloadSpec::Phase::kRushHour) {
      // Sum of two uniforms -> triangular on [-1, 1] around the peak.
      const double jitter = rng.NextDouble() + rng.NextDouble() - 1.0;
      q.tune_phase = WrapUnit(spec.phase_peak + jitter * spec.phase_width);
    } else {
      q.tune_phase = rng.NextDouble();
    }
  }
  if (spec.arrival.kind != ArrivalSpec::Kind::kNone) {
    // Arrivals come from their own salted stream *after* the query
    // sampling above, so specs with and without an arrival process draw
    // the exact same query population.
    AIRINDEX_ASSIGN_OR_RETURN(
        std::vector<double> arrivals,
        GenerateArrivals(spec.arrival, spec.count, spec.seed));
    for (size_t i = 0; i < spec.count; ++i) {
      w.queries[i].arrival_ms = arrivals[i];
    }
  }
  ParallelFor(spec.count, [&](size_t i) {
    auto& q = w.queries[i];
    q.true_dist = algo::DijkstraSearch(g, q.source, q.target,
                                       algo::AllEdges{})
                      .dist[q.target];
  });
  for (const auto& q : w.queries) {
    if (q.true_dist == graph::kInfDist) {
      return Status::FailedPrecondition(
          "workload contains an unreachable pair; the network is not "
          "strongly connected");
    }
  }
  return w;
}

Result<Workload> GenerateWorkload(const graph::Graph& g, size_t count,
                                  uint64_t seed) {
  WorkloadSpec spec;
  spec.count = count;
  spec.seed = seed;
  return GenerateWorkload(g, spec);
}

std::vector<double> DestinationWeights(size_t num_nodes,
                                       const WorkloadSpec& spec) {
  std::vector<double> w(num_nodes, 0.0);
  if (num_nodes == 0) return w;
  if (spec.dest == WorkloadSpec::Dest::kUniform || spec.zipf_s <= 0.0) {
    const double u = 1.0 / static_cast<double>(num_nodes);
    std::fill(w.begin(), w.end(), u);
    return w;
  }
  // Mirror ZipfSampler exactly: same permutation stream, same pmf.
  std::vector<graph::NodeId> perm(num_nodes);
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  Rng rng(spec.seed ^ 0x5a1fD15Cull);
  for (size_t i = num_nodes - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
  }
  double total = 0.0;
  for (size_t r = 0; r < num_nodes; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s);
  }
  for (size_t r = 0; r < num_nodes; ++r) {
    w[perm[r]] =
        1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s) / total;
  }
  return w;
}

std::vector<std::vector<size_t>> BucketizeByLength(const Workload& w,
                                                   int buckets) {
  std::vector<std::vector<size_t>> out(buckets);
  const graph::Dist max_dist = MaxTrueDist(w);
  if (max_dist == 0) return out;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    const auto b = static_cast<int>(
        static_cast<unsigned long long>(w.queries[i].true_dist) * buckets /
        (max_dist + 1));
    out[std::min(b, buckets - 1)].push_back(i);
  }
  return out;
}

graph::Dist MaxTrueDist(const Workload& w) {
  graph::Dist max_dist = 0;
  for (const auto& q : w.queries) max_dist = std::max(max_dist, q.true_dist);
  return max_dist;
}

}  // namespace airindex::workload
