#include "workload/arrival.h"

#include <cmath>
#include <string>

#include "common/rng.h"

namespace airindex::workload {

std::string_view ArrivalKindName(ArrivalSpec::Kind kind) {
  switch (kind) {
    case ArrivalSpec::Kind::kUniform:
      return "uniform";
    case ArrivalSpec::Kind::kPoisson:
      return "poisson";
    case ArrivalSpec::Kind::kRushHour:
      return "rush-hour";
    case ArrivalSpec::Kind::kNone:
      break;
  }
  return "none";
}

Result<ArrivalSpec::Kind> ParseArrivalKind(std::string_view name) {
  for (auto kind :
       {ArrivalSpec::Kind::kNone, ArrivalSpec::Kind::kUniform,
        ArrivalSpec::Kind::kPoisson, ArrivalSpec::Kind::kRushHour}) {
    if (name == ArrivalKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown arrival process \"" +
                                 std::string(name) +
                                 "\" (none|uniform|poisson|rush-hour)");
}

namespace {

constexpr uint64_t kArrivalSalt = 0xA881Da1ull;

/// Triangular bump in [0, 1]: 1 at the peak, 0 outside the half-width.
double Bump(double t, double peak, double width) {
  const double d = std::fabs(t - peak);
  return d >= width ? 0.0 : 1.0 - d / width;
}

/// Exponential inter-arrival draw with the given rate (arrivals/second).
/// 1 - u is in (0, 1], so the log is finite.
double NextExponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

}  // namespace

Result<std::vector<double>> GenerateArrivals(const ArrivalSpec& spec,
                                             size_t count,
                                             uint64_t fallback_seed) {
  if (spec.kind == ArrivalSpec::Kind::kNone) {
    return Status::InvalidArgument(
        "arrival kind is none; derive arrivals from tune phases instead");
  }
  if (!(spec.rate_per_second > 0.0)) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  std::vector<double> out;
  out.reserve(count);

  if (spec.kind == ArrivalSpec::Kind::kUniform) {
    // Deterministic even spacing: no randomness to seed.
    const double step_ms = 1000.0 / spec.rate_per_second;
    for (size_t i = 0; i < count; ++i) {
      out.push_back(static_cast<double>(i) * step_ms);
    }
    return out;
  }

  Rng rng(spec.seed != 0 ? spec.seed : fallback_seed ^ kArrivalSalt);
  if (spec.kind == ArrivalSpec::Kind::kPoisson) {
    double t = 0.0;
    for (size_t i = 0; i < count; ++i) {
      t += NextExponential(rng, spec.rate_per_second);
      out.push_back(t * 1000.0);
    }
    return out;
  }

  // kRushHour: inhomogeneous Poisson via Lewis-Shedler thinning. The
  // intensity is base * (1 + (mult - 1) * bump(t)), bounded by base * mult,
  // so candidate arrivals are drawn at the peak rate and accepted with
  // probability intensity(t) / peak.
  if (!(spec.width_seconds > 0.0)) {
    return Status::InvalidArgument("rush-hour arrival width must be positive");
  }
  if (!(spec.peak_multiplier >= 1.0)) {
    return Status::InvalidArgument(
        "rush-hour peak multiplier must be >= 1");
  }
  const double peak_rate = spec.rate_per_second * spec.peak_multiplier;
  double t = 0.0;
  while (out.size() < count) {
    t += NextExponential(rng, peak_rate);
    const double intensity =
        spec.rate_per_second *
        (1.0 + (spec.peak_multiplier - 1.0) *
                   Bump(t, spec.peak_seconds, spec.width_seconds));
    if (rng.NextDouble() < intensity / peak_rate) out.push_back(t * 1000.0);
  }
  return out;
}

}  // namespace airindex::workload
