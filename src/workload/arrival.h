#ifndef AIRINDEX_WORKLOAD_ARRIVAL_H_
#define AIRINDEX_WORKLOAD_ARRIVAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"

namespace airindex::workload {

/// Declarative description of *when* a fleet's clients pose their queries
/// on the shared station clock. The per-query replay model draws a private
/// cycle phase per query; an arrival process instead produces absolute
/// timestamps, so clients arrive over time and contention effects (cycle
/// boundary waits, rush-hour pileups) come from one timeline. Seeded and
/// deterministic like every other randomized component.
struct ArrivalSpec {
  enum class Kind {
    /// No arrival process: the event engine derives each client's arrival
    /// from its cycle-relative tune_phase (one cycle's worth of arrivals).
    kNone,
    /// Clients evenly spaced: client i arrives at i / rate_per_second.
    kUniform,
    /// Homogeneous Poisson process: exponential inter-arrival times with
    /// mean 1 / rate_per_second.
    kPoisson,
    /// Inhomogeneous Poisson (thinning): base rate_per_second everywhere,
    /// ramping to peak_multiplier * rate_per_second in a triangular burst
    /// of half-width width_seconds around peak_seconds — the flash-crowd /
    /// rush-hour shape.
    kRushHour,
  };
  Kind kind = Kind::kNone;

  /// Mean arrival rate, clients per second (base rate for kRushHour).
  double rate_per_second = 50.0;
  /// kRushHour burst: center, half-width, and peak intensity multiplier.
  double peak_seconds = 30.0;
  double width_seconds = 10.0;
  double peak_multiplier = 8.0;
  /// Arrival stream seed; 0 derives one from the workload seed.
  uint64_t seed = 0;

  bool operator==(const ArrivalSpec&) const = default;
};

/// Generates `count` arrival timestamps (milliseconds, non-decreasing) for
/// `spec`. A spec seed of 0 falls back to `fallback_seed` (salted — the
/// arrival stream never aliases the query-sampling stream). Returns
/// InvalidArgument for non-positive rates/widths and for kNone (the caller
/// decides the phase-derived fallback).
Result<std::vector<double>> GenerateArrivals(const ArrivalSpec& spec,
                                             size_t count,
                                             uint64_t fallback_seed);

/// The schema/CLI name of an arrival kind ("none" | "uniform" | "poisson"
/// | "rush-hour") and its inverse. The one mapping every consumer — the
/// scenario JSON writer/parser and the CLI flag — goes through.
std::string_view ArrivalKindName(ArrivalSpec::Kind kind);
Result<ArrivalSpec::Kind> ParseArrivalKind(std::string_view name);

}  // namespace airindex::workload

#endif  // AIRINDEX_WORKLOAD_ARRIVAL_H_
