// City navigation: a Milan-style network broadcasts on air while a fleet of
// commuters runs shortest-path queries. Compares every applicable method on
// the §3.1 performance factors, including battery cost per query.
//
//   $ ./city_navigation

#include <cstdio>
#include <vector>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "device/energy.h"
#include "graph/catalog.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  // A scaled Milan replica keeps the example under a few seconds.
  graph::Graph city =
      graph::MakeNetwork(graph::PaperNetworks()[0], /*scale=*/0.15).value();
  std::printf("Milan-style network: %zu intersections, %zu road arcs\n\n",
              city.num_nodes(), city.num_arcs());

  core::SystemParams params;
  params.arcflag_regions = 16;
  params.eb_regions = 16;
  params.nr_regions = 16;
  params.landmarks = 4;
  auto systems = core::BuildSystems(city, params).value();

  // 60 commuters asking for routes at random instants.
  auto commuters = workload::GenerateWorkload(city, 60, 2024).value();

  device::EnergyModel energy(device::DeviceProfile::J2mePhone(),
                             device::kBitrateStatic3G);

  std::printf("%-6s %12s %12s %10s %10s %10s\n", "method", "tuning[pkt]",
              "latency[s]", "mem[KB]", "cpu[ms]", "energy[J]");
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    std::vector<device::QueryMetrics> metrics;
    double joules = 0;
    for (const auto& q : commuters.queries) {
      auto m = sys->RunQuery(channel, core::MakeAirQuery(city, q));
      joules += energy.QueryJoules(m);
      metrics.push_back(m);
    }
    auto s = device::MetricsSummary::Of(metrics);
    std::printf("%-6s %12.0f %12.2f %10.0f %10.2f %10.3f\n",
                std::string(sys->name()).c_str(), s.avg_tuning_packets,
                device::CycleSeconds(
                    static_cast<uint64_t>(s.avg_latency_packets),
                    device::kBitrateStatic3G),
                s.avg_peak_memory_bytes / 1024.0, s.avg_cpu_ms,
                joules / static_cast<double>(commuters.queries.size()));
  }
  std::printf(
      "\nSelective tuning (NR, EB) receives a handful of regions instead\n"
      "of the whole city, which is where the battery savings come from.\n");
  return 0;
}
