// Packet loss resilience (§6.2): the same query stream over increasingly
// lossy channels. Every method stays exact — losses only cost tuning time
// and latency — and the lower a method's tuning time, the less it degrades.
// Systems come from the core catalog (core::BuildSystem) instead of
// per-method Build calls; the last row shows the same loss rate grouped
// into fade bursts (LossModel::Bursty).
//
//   $ ./packet_loss_demo

#include <cstdio>
#include <memory>
#include <vector>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "graph/generator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  graph::GeneratorOptions gen;
  gen.num_nodes = 3000;
  gen.num_edges = 4200;
  gen.seed = 99;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();

  std::vector<std::unique_ptr<core::AirSystem>> systems;
  core::SystemParams params;
  params.nr_regions = 16;
  for (const char* method : {"DJ", "NR"}) {
    systems.push_back(core::BuildSystem(network, method, params).value());
  }
  auto w = workload::GenerateWorkload(network, 25, 3).value();

  const broadcast::LossModel models[] = {
      broadcast::LossModel::None(), broadcast::LossModel::Independent(0.01),
      broadcast::LossModel::Independent(0.05),
      broadcast::LossModel::Independent(0.10),
      broadcast::LossModel::Bursty(0.10, 8)};

  std::printf("%-14s %-6s %14s %14s %8s\n", "loss", "method", "tuning[pkt]",
              "latency[pkt]", "exact");
  for (const broadcast::LossModel& loss : models) {
    for (const auto& sys : systems) {
      broadcast::BroadcastChannel channel(&sys->cycle(), loss, 555);
      core::ClientOptions opts;
      opts.max_repair_cycles = 64;
      double tuning = 0, latency = 0;
      bool all_exact = true;
      for (const auto& q : w.queries) {
        auto m = sys->RunQuery(channel, core::MakeAirQuery(network, q),
                               opts);
        tuning += static_cast<double>(m.tuning_packets);
        latency += static_cast<double>(m.latency_packets);
        all_exact &= m.ok && m.distance == q.true_dist;
      }
      const auto n = static_cast<double>(w.queries.size());
      char label[32];
      if (loss.burst_len > 1) {
        std::snprintf(label, sizeof(label), "%.0f%% burst=%u",
                      loss.rate * 100, loss.burst_len);
      } else {
        std::snprintf(label, sizeof(label), "%.0f%%", loss.rate * 100);
      }
      std::printf("%-14s %-6s %14.0f %14.0f %8s\n", label,
                  std::string(sys->name()).c_str(), tuning / n, latency / n,
                  all_exact ? "yes" : "NO");
    }
  }
  std::printf(
      "\nDijkstra re-listens to every lost adjacency packet next cycle;\n"
      "NR only re-listens within the few regions it needs, so its\n"
      "degradation stays proportional to its (small) tuning time.\n"
      "Bursty fades cost less tuning than independent losses at the same\n"
      "rate: a client re-listens to whole runs of packets in one pass.\n");
  return 0;
}
