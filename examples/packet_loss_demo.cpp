// Packet loss resilience (§6.2): the same query stream over increasingly
// lossy channels. Every method stays exact — losses only cost tuning time
// and latency — and the lower a method's tuning time, the less it degrades.
//
//   $ ./packet_loss_demo

#include <cstdio>

#include "broadcast/channel.h"
#include "core/dijkstra_on_air.h"
#include "core/nr.h"
#include "graph/generator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  graph::GeneratorOptions gen;
  gen.num_nodes = 3000;
  gen.num_edges = 4200;
  gen.seed = 99;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();

  auto dj = core::DijkstraOnAir::Build(network).value();
  auto nr = core::NrSystem::Build(network, 16).value();
  auto w = workload::GenerateWorkload(network, 25, 3).value();

  std::printf("%-8s %-6s %14s %14s %8s\n", "loss", "method", "tuning[pkt]",
              "latency[pkt]", "exact");
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    for (const core::AirSystem* sys :
         {static_cast<const core::AirSystem*>(dj.get()),
          static_cast<const core::AirSystem*>(nr.get())}) {
      broadcast::BroadcastChannel channel(&sys->cycle(), loss, 555);
      core::ClientOptions opts;
      opts.max_repair_cycles = 64;
      double tuning = 0, latency = 0;
      bool all_exact = true;
      for (const auto& q : w.queries) {
        auto m = sys->RunQuery(channel, core::MakeAirQuery(network, q),
                               opts);
        tuning += static_cast<double>(m.tuning_packets);
        latency += static_cast<double>(m.latency_packets);
        all_exact &= m.ok && m.distance == q.true_dist;
      }
      const auto n = static_cast<double>(w.queries.size());
      std::printf("%-8.1f%%%-6s %14.0f %14.0f %8s\n", loss * 100,
                  std::string(sys->name()).c_str(), tuning / n, latency / n,
                  all_exact ? "yes" : "NO");
    }
  }
  std::printf(
      "\nDijkstra re-listens to every lost adjacency packet next cycle;\n"
      "NR only re-listens within the few regions it needs, so its\n"
      "degradation stays proportional to its (small) tuning time.\n");
  return 0;
}
