// Scenario tour: the declarative way to run heterogeneous client fleets.
// Lists the built-in catalog, then runs one scenario at smoke scale and
// prints its per-group + fleet report. The same specs drive
// `airindex_cli scenario` and the figure benches.
//
//   $ ./scenario_tour

#include <cstdio>

#include "device/profile_catalog.h"
#include "sim/scenario.h"
#include "sim/scenario_catalog.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  std::printf("built-in scenarios:\n");
  for (const sim::Scenario& s : sim::ScenarioCatalog()) {
    std::printf("  %-20s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::printf("\nbuilt-in device profiles:\n");
  for (const device::ProfileSpec& p : device::ProfileCatalog()) {
    std::printf("  %-12s %s\n", std::string(p.name).c_str(),
                std::string(p.description).c_str());
  }

  // Run the mixed fleet small: three client groups (rush-hour smartphone
  // commuters, memory-bound sensors on a bursty link, uniform feature
  // phones) against two systems, one engine, one report.
  sim::Scenario scenario = sim::FindScenario("mixed-fleet").value();
  scenario.scale = 0.04;
  scenario.total_queries = 18;
  scenario.systems = {"DJ", "NR"};

  auto result = sim::ScenarioRunner().Run(scenario);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", sim::ScenarioToText(*result).c_str());
  std::printf(
      "\nEvery group ran through the same broadcast cycles (built once via\n"
      "the system registry); the fleet table re-aggregates the combined\n"
      "per-query samples with each group's own device energy model.\n");
  return 0;
}
