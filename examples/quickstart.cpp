// Quickstart: build a road network, put the Next Region method on air, and
// answer one shortest-path query from a simulated mobile client.
//
//   $ ./quickstart

#include <cstdio>

#include "broadcast/channel.h"
#include "core/nr.h"
#include "device/energy.h"
#include "graph/generator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  // 1. A synthetic road network: 2,000 intersections, 3,000 road segments.
  graph::GeneratorOptions gen;
  gen.num_nodes = 2000;
  gen.num_edges = 3000;
  gen.seed = 7;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();
  std::printf("network: %zu nodes, %zu arcs\n", network.num_nodes(),
              network.num_arcs());

  // 2. Server side: build the NR broadcast cycle (kd-tree partitioning into
  //    16 regions, border-pair pre-computation, per-region local indexes).
  auto server = core::NrSystem::Build(network, /*num_regions=*/16).value();
  std::printf("broadcast cycle: %u packets of %zu bytes (pre-computed in "
              "%.2f s)\n",
              server->cycle().total_packets(), broadcast::kPacketSize,
              server->precompute_seconds());

  // 3. The channel transmits the cycle forever; a client tunes in at an
  //    arbitrary instant and asks for a shortest path.
  broadcast::BroadcastChannel channel(&server->cycle(), /*loss_rate=*/0.0);

  workload::Query query;
  query.source = 17;
  query.target = 1860;
  query.tune_phase = 0.42;  // tune in 42% into the cycle
  device::QueryMetrics result =
      server->RunQuery(channel, core::MakeAirQuery(network, query));

  // 4. What did it cost? (the paper's §3.1 performance factors)
  device::EnergyModel energy(device::DeviceProfile::J2mePhone(),
                             device::kBitrateMoving3G);
  std::printf("\nquery %u -> %u\n", query.source, query.target);
  std::printf("  distance        : %llu\n",
              static_cast<unsigned long long>(result.distance));
  std::printf("  tuning time     : %llu packets\n",
              static_cast<unsigned long long>(result.tuning_packets));
  std::printf("  access latency  : %llu packets (%.2f s at 384 Kbps)\n",
              static_cast<unsigned long long>(result.latency_packets),
              device::CycleSeconds(result.latency_packets,
                                   device::kBitrateMoving3G));
  std::printf("  peak memory     : %.2f KB\n",
              result.peak_memory_bytes / 1024.0);
  std::printf("  client CPU      : %.2f ms\n", result.cpu_ms);
  std::printf("  regions received: %u of 16\n", result.regions_received);
  std::printf("  radio energy    : %.3f J\n", energy.QueryJoules(result));
  return result.ok ? 0 : 1;
}
