// On-air spatial query (the paper's §8 future-work direction): a driver
// asks for every charging station within a travel budget, answered purely
// from the broadcast channel via the EB index's range pruning.
//
//   $ ./poi_range_search

#include <cstdio>
#include <vector>

#include "broadcast/channel.h"
#include "common/rng.h"
#include "core/range_on_air.h"
#include "graph/generator.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  graph::GeneratorOptions gen;
  gen.num_nodes = 3000;
  gen.num_edges = 4500;
  gen.seed = 33;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();

  // Mark ~2% of intersections as charging stations.
  Rng rng(77);
  std::vector<uint8_t> is_station(network.num_nodes(), 0);
  size_t stations = 0;
  for (graph::NodeId v = 0; v < network.num_nodes(); ++v) {
    if (rng.NextBernoulli(0.02)) {
      is_station[v] = 1;
      ++stations;
    }
  }
  std::printf("network: %zu nodes, %zu charging stations\n",
              network.num_nodes(), stations);

  auto eb = core::EbSystem::Build(network, 16).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), /*loss_rate=*/0.01);

  core::RangeQuery query;
  query.source = 123;
  query.source_coord = network.Coord(123);
  query.radius = 25000;  // travel budget in weight units
  query.tune_phase = 0.6;

  core::ClientOptions opts;
  opts.max_repair_cycles = 32;
  core::RangeResult res = core::RunRangeQuery(*eb, channel, query, opts);

  std::printf("\nwithin %llu of node %u: %zu nodes reachable\n",
              static_cast<unsigned long long>(query.radius), query.source,
              res.nodes.size());
  std::printf("stations, nearest first:\n");
  int shown = 0;
  for (const auto& [node, dist] : res.nodes) {
    if (!is_station[node]) continue;
    std::printf("  station at node %-6u distance %llu\n", node,
                static_cast<unsigned long long>(dist));
    if (++shown == 8) break;
  }
  std::printf(
      "\ncost: %llu packets tuned, %.1f KB peak memory, %u regions of 16\n",
      static_cast<unsigned long long>(res.metrics.tuning_packets),
      res.metrics.peak_memory_bytes / 1024.0, res.metrics.regions_received);
  std::printf(
      "\nThe EB index prunes every region whose minimum network distance\n"
      "from the client's region exceeds the budget, so the client listens\n"
      "to a handful of regions instead of the whole city.\n");
  return res.metrics.ok ? 0 : 1;
}
