// Memory-bound processing (§6.1): a device with a tiny application heap
// collapses each received region into super-edges instead of keeping the
// raw data, trading CPU for peak memory. Distances stay exact.
//
//   $ ./memory_bound_device

#include <cstdio>

#include "broadcast/channel.h"
#include "core/eb.h"
#include "core/nr.h"
#include "graph/generator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  graph::GeneratorOptions gen;
  gen.num_nodes = 4000;
  gen.num_edges = 5600;
  gen.seed = 12;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();

  auto eb = core::EbSystem::Build(network, 16).value();
  auto nr = core::NrSystem::Build(network, 16).value();
  auto w = workload::GenerateWorkload(network, 30, 6).value();

  std::printf("%-4s %-14s %12s %10s %8s\n", "", "mode", "peak mem[KB]",
              "cpu[ms]", "exact");
  for (const core::AirSystem* sys :
       {static_cast<const core::AirSystem*>(eb.get()),
        static_cast<const core::AirSystem*>(nr.get())}) {
    for (bool membound : {false, true}) {
      broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
      core::ClientOptions opts;
      opts.memory_bound = membound;
      double mem = 0, cpu = 0;
      bool all_exact = true;
      for (const auto& q : w.queries) {
        auto m = sys->RunQuery(channel, core::MakeAirQuery(network, q),
                               opts);
        mem += static_cast<double>(m.peak_memory_bytes);
        cpu += m.cpu_ms;
        all_exact &= m.ok && m.distance == q.true_dist;
      }
      const auto n = static_cast<double>(w.queries.size());
      std::printf("%-4s %-14s %12.1f %10.2f %8s\n",
                  std::string(sys->name()).c_str(),
                  membound ? "super-edges" : "raw regions", mem / n / 1024.0,
                  cpu / n, all_exact ? "yes" : "NO");
    }
  }
  std::printf(
      "\nSuper-edge processing keeps only border-to-border distances per\n"
      "region (Fig. 8's G' overlay), cutting the peak working set while\n"
      "still returning exact shortest-path distances.\n");
  return 0;
}
