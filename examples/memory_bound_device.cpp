// Memory-bound processing (§6.1): a device with a tiny application heap
// collapses each received region into super-edges instead of keeping the
// raw data, trading CPU for peak memory. Distances stay exact. Systems
// come from the core catalog (core::BuildSystem); the heap budget comes
// from the device catalog's iot-sensor profile.
//
//   $ ./memory_bound_device

#include <cstdio>
#include <memory>
#include <vector>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "device/profile_catalog.h"
#include "graph/generator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: example binary

int main() {
  graph::GeneratorOptions gen;
  gen.num_nodes = 4000;
  gen.num_edges = 5600;
  gen.seed = 12;
  graph::Graph network = graph::GenerateRoadNetwork(gen).value();

  std::vector<std::unique_ptr<core::AirSystem>> systems;
  core::SystemParams params;
  params.eb_regions = 16;
  params.nr_regions = 16;
  for (const char* method : {"EB", "NR"}) {
    systems.push_back(core::BuildSystem(network, method, params).value());
  }
  auto w = workload::GenerateWorkload(network, 30, 6).value();

  const device::DeviceProfile sensor =
      device::FindProfile("iot-sensor").value();
  std::printf("device: iot-sensor, %.1f MB heap\n",
              static_cast<double>(sensor.heap_bytes) / (1024.0 * 1024.0));

  std::printf("%-4s %-14s %12s %10s %8s\n", "", "mode", "peak mem[KB]",
              "cpu[ms]", "exact");
  for (const auto& sys : systems) {
    for (bool membound : {false, true}) {
      broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
      core::ClientOptions opts;
      opts.heap_bytes = sensor.heap_bytes;
      opts.memory_bound = membound;
      double mem = 0, cpu = 0;
      bool all_exact = true;
      for (const auto& q : w.queries) {
        auto m = sys->RunQuery(channel, core::MakeAirQuery(network, q),
                               opts);
        mem += static_cast<double>(m.peak_memory_bytes);
        cpu += m.cpu_ms;
        all_exact &= m.ok && m.distance == q.true_dist;
      }
      const auto n = static_cast<double>(w.queries.size());
      std::printf("%-4s %-14s %12.1f %10.2f %8s\n",
                  std::string(sys->name()).c_str(),
                  membound ? "super-edges" : "raw regions", mem / n / 1024.0,
                  cpu / n, all_exact ? "yes" : "NO");
    }
  }
  std::printf(
      "\nSuper-edge processing keeps only border-to-border distances per\n"
      "region (Fig. 8's G' overlay), cutting the peak working set while\n"
      "still returning exact shortest-path distances.\n");
  return 0;
}
